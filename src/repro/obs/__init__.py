"""Telemetry for the SymBee stack: metrics, trace spans, run manifests.

Three cooperating pieces, all off by default and cheap when off:

* :mod:`repro.obs.metrics` — the process-wide :data:`~repro.obs.metrics.REGISTRY`
  of counters / gauges / fixed-bucket histograms.  Worker processes ship
  snapshot shards back through ``repro.runtime.run_trials``, which merges
  them into the parent so parallel runs report the same aggregate
  telemetry as serial ones.
* :mod:`repro.obs.trace` — the process-wide :data:`~repro.obs.trace.TRACER`
  of nested, labeled spans over the modulate→channel→front_end→decode
  pipeline (the structured successor of ``StageTimings``).
* :mod:`repro.obs.manifest` — per-run manifest records (seed, config,
  git rev, experiment status, metric snapshot) and JSONL export/import.
* :mod:`repro.obs.live` / :mod:`repro.obs.export` — the live telemetry
  plane (PR 7): a periodic :class:`~repro.obs.live.LiveCollector`
  snapshotting the registry while the run is still going, fanning
  delta/rate samples out to a JSONL time series, a Prometheus text
  exposition file, or a TTY dashboard line.

CLI surface: ``python -m repro run <id> --metrics-out run.jsonl --trace``
records a run, ``python -m repro obs summary run.jsonl`` pretty-prints
it; ``listen --live --metrics-stream live.jsonl`` streams live samples
and ``python -m repro obs tail live.jsonl`` replays them.  Schemas are
documented in ``docs/observability.md``.
"""

import logging

from repro.obs.export import (
    JsonlSink,
    PrometheusFileSink,
    format_live_line,
    read_metrics_stream,
    render_prometheus,
    summarize_metrics_stream,
)
from repro.obs.live import LiveCollector, TtyDashboard
from repro.obs.manifest import (
    build_manifest,
    read_run_jsonl,
    summarize_manifest,
    write_run_jsonl,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, snapshot_delta
from repro.obs.trace import TRACER, Tracer

__all__ = [
    "REGISTRY",
    "TRACER",
    "JsonlSink",
    "LiveCollector",
    "MetricsRegistry",
    "PrometheusFileSink",
    "Tracer",
    "TtyDashboard",
    "build_manifest",
    "configure_logging",
    "enable",
    "disable",
    "format_live_line",
    "read_metrics_stream",
    "read_run_jsonl",
    "render_prometheus",
    "snapshot_delta",
    "summarize_manifest",
    "summarize_metrics_stream",
    "write_run_jsonl",
]


def enable(trace=False):
    """Turn on metrics collection (and optionally span tracing)."""
    REGISTRY.enable()
    if trace:
        TRACER.enable()


def disable():
    """Turn off metrics and tracing (recorded data is kept until reset)."""
    REGISTRY.disable()
    TRACER.disable()


def configure_logging(verbosity=0, stream=None):
    """Wire the ``repro.*`` logger namespace to a stderr handler.

    ``verbosity`` maps CLI flags to levels: ``-q`` → -1 (errors only),
    default 0 → warnings, ``-v`` → info, ``-vv`` → debug.  Diagnostics go
    through :mod:`logging` so experiments' table output keeps stdout to
    itself.  Re-invoking replaces the previous handler (idempotent under
    repeated CLI entry, e.g. in tests).
    """
    level = {
        -1: logging.ERROR,
        0: logging.WARNING,
        1: logging.INFO,
    }.get(max(-1, min(int(verbosity), 2)), logging.DEBUG)
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
