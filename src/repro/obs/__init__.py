"""Telemetry for the SymBee stack: metrics, trace spans, run manifests.

Three cooperating pieces, all off by default and cheap when off:

* :mod:`repro.obs.metrics` — the process-wide :data:`~repro.obs.metrics.REGISTRY`
  of counters / gauges / fixed-bucket histograms.  Worker processes ship
  snapshot shards back through ``repro.runtime.run_trials``, which merges
  them into the parent so parallel runs report the same aggregate
  telemetry as serial ones.
* :mod:`repro.obs.trace` — the process-wide :data:`~repro.obs.trace.TRACER`
  of nested, labeled spans over the modulate→channel→front_end→decode
  pipeline (the structured successor of ``StageTimings``).
* :mod:`repro.obs.manifest` — per-run manifest records (seed, config,
  git rev, experiment status, metric snapshot) and JSONL export/import.

CLI surface: ``python -m repro run <id> --metrics-out run.jsonl --trace``
records a run, ``python -m repro obs summary run.jsonl`` pretty-prints
it.  Schemas are documented in ``docs/observability.md``.
"""

import logging

from repro.obs.manifest import (
    build_manifest,
    read_run_jsonl,
    summarize_manifest,
    write_run_jsonl,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import TRACER, Tracer

__all__ = [
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "Tracer",
    "build_manifest",
    "configure_logging",
    "enable",
    "disable",
    "read_run_jsonl",
    "summarize_manifest",
    "write_run_jsonl",
]


def enable(trace=False):
    """Turn on metrics collection (and optionally span tracing)."""
    REGISTRY.enable()
    if trace:
        TRACER.enable()


def disable():
    """Turn off metrics and tracing (recorded data is kept until reset)."""
    REGISTRY.disable()
    TRACER.disable()


def configure_logging(verbosity=0, stream=None):
    """Wire the ``repro.*`` logger namespace to a stderr handler.

    ``verbosity`` maps CLI flags to levels: ``-q`` → -1 (errors only),
    default 0 → warnings, ``-v`` → info, ``-vv`` → debug.  Diagnostics go
    through :mod:`logging` so experiments' table output keeps stdout to
    itself.  Re-invoking replaces the previous handler (idempotent under
    repeated CLI entry, e.g. in tests).
    """
    level = {
        -1: logging.ERROR,
        0: logging.WARNING,
        1: logging.INFO,
    }.get(max(-1, min(int(verbosity), 2)), logging.DEBUG)
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
