"""Live telemetry plane: periodic registry snapshots fanned out to sinks.

``repro.obs`` (PR 2) records what a run *did* — a metric snapshot
written after the fact.  :class:`LiveCollector` shows what a run *is
doing*: on a wall-clock interval it snapshots the process-wide
:data:`~repro.obs.metrics.REGISTRY`, folds in any worker-shard deltas
shipped over a :class:`~repro.runtime.workerpool.BlockWorkerPool`'s
telemetry side queue, computes counter deltas/rates against the previous
tick, and emits one *live sample* to every sink (JSONL time series,
Prometheus exposition file, TTY dashboard — see :mod:`repro.obs.export`).

Two driving modes:

* **inline** — a run loop calls :meth:`LiveCollector.maybe_tick` at a
  natural cadence point (``StreamEngine.run`` does this per block); the
  collector decides whether the interval has elapsed.  Deterministic
  and test-friendly: no thread is involved.
* **background** — :meth:`start` spawns a daemon thread ticking every
  interval, for long-running hosts whose hot loop should not carry the
  tick check.  Instrument mutations are plain int/float stores under
  the GIL, so a concurrent snapshot is torn at worst *between*
  instruments — fine for a monitoring view, never corrupting.

The cumulative-totals contract, asserted in ``tests/obs/``: after
:meth:`finalize`, the last emitted sample's counters/histogram totals
equal the end-of-run registry snapshot exactly.  Worker-side live deltas
only ever *preview* totals mid-run; when the pool's authoritative
task-ordered end-of-run merge lands in the parent registry, the caller
drops the preview (:meth:`drop_side_shards`) so nothing double-counts.
"""

import threading
import time

from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    snapshot_is_empty,
)
from repro.obs.export import LIVE_SCHEMA_VERSION, format_live_line


class LiveCollector:
    """Snapshot the registry on an interval; emit delta/rate samples.

    ``interval_s=0`` ticks on every :meth:`maybe_tick` call — useful in
    tests and for per-block resolution on short runs.  ``clock`` is the
    monotonic interval clock, ``wall`` stamps ``t_unix``; both are
    injectable so tick timing is testable without sleeping.
    """

    def __init__(
        self,
        interval_s=0.5,
        sinks=(),
        registry=None,
        clock=time.monotonic,
        wall=time.time,
    ):
        self.interval_s = float(interval_s)
        if self.interval_s < 0:
            raise ValueError("interval_s must be >= 0")
        self.sinks = list(sinks)
        self._registry = registry if registry is not None else REGISTRY
        self._clock = clock
        self._wall = wall
        self._lock = threading.Lock()
        self._side = MetricsRegistry()
        self._side_active = False
        self._start_clock = self._clock()
        self._last_tick_clock = self._start_clock
        self._prev_counters = {}
        self._seq = 0
        self.samples_emitted = 0
        self._finalized = False
        self._thread = None
        self._stop_event = None

    # -- worker-shard side channel ------------------------------------------

    def ingest_shards(self, shards):
        """Fold worker telemetry delta shards into the side accumulator.

        Shards are :func:`repro.obs.metrics.snapshot_delta` dicts drained
        from a pool's side queue; merging is order-tolerant because
        counter/histogram merges are plain addition (gauges are
        last-merged-wins, acceptable for a monitoring preview).
        """
        with self._lock:
            for shard in shards:
                if not snapshot_is_empty(shard):
                    self._side.merge(shard)
                    self._side_active = True

    def drop_side_shards(self):
        """Discard the live preview once authoritative totals merged.

        Call after ``BlockWorkerPool.join()`` has merged the workers'
        full end-of-run snapshots into the parent registry — from then
        on the registry alone is the truth and keeping the preview would
        double-count every worker event.
        """
        with self._lock:
            self._side = MetricsRegistry()
            self._side_active = False

    # -- ticking -------------------------------------------------------------

    def _combined_snapshot(self):
        base = self._registry.snapshot()
        if not self._side_active:
            return base
        scratch = MetricsRegistry()
        scratch.merge(base)
        scratch.merge(self._side.snapshot())
        return scratch.snapshot()

    def maybe_tick(self):
        """Tick if the interval has elapsed; returns the sample or ``None``."""
        if self._clock() - self._last_tick_clock < self.interval_s:
            return None
        return self.tick()

    def tick(self, final=False):
        """Force one sample now and emit it to every sink."""
        with self._lock:
            now = self._clock()
            dt = now - self._last_tick_clock
            self._last_tick_clock = now
            snapshot = self._combined_snapshot()
            counters = snapshot.get("counters", {})
            safe_dt = max(dt, 1e-9)
            rates = {
                name: (value - self._prev_counters.get(name, 0)) / safe_dt
                for name, value in counters.items()
            }
            self._prev_counters = dict(counters)
            sample = {
                "type": "live",
                "schema_version": LIVE_SCHEMA_VERSION,
                "seq": self._seq,
                "t_unix": round(self._wall(), 3),
                "elapsed_s": round(now - self._start_clock, 6),
                "dt_s": round(dt, 6),
                "final": bool(final),
                "counters": counters,
                "rates": rates,
                "gauges": snapshot.get("gauges", {}),
                "histograms": {
                    name: {"count": data["count"], "total": data["total"]}
                    for name, data in snapshot.get("histograms", {}).items()
                },
            }
            self._seq += 1
            self.samples_emitted += 1
        for sink in self.sinks:
            sink.emit(sample, snapshot)
        return sample

    def finalize(self):
        """Stop any background thread and emit the final sample once.

        Idempotent: a second call neither re-emits nor re-stops.  The
        final sample's cumulative totals are exactly the registry's
        end-of-run snapshot (plus any still-active side preview, so
        drop the preview first when a pool merge has landed).
        """
        if self._finalized:
            return None
        self._finalized = True
        self.stop()
        return self.tick(final=True)

    # -- background mode -----------------------------------------------------

    def start(self):
        """Tick from a daemon thread every ``interval_s`` until :meth:`stop`."""
        if self._thread is not None:
            raise ValueError("collector thread already running")
        if self.interval_s <= 0:
            raise ValueError("background mode needs a positive interval_s")
        self._stop_event = threading.Event()

        def loop():
            while not self._stop_event.wait(self.interval_s):
                self.tick()

        self._thread = threading.Thread(
            target=loop, name="repro-live-collector", daemon=True
        )
        self._thread.start()

    def stop(self):
        """Stop the background thread (no-op when not running)."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._stop_event = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.finalize()
        return False


class TtyDashboard:
    """Sink printing one status line per tick (stderr by default).

    Plain lines rather than an ANSI redraw: the output stays readable in
    CI logs, under redirection, and side by side with the run's own
    tables.  Rendering is :func:`repro.obs.export.format_live_line`, the
    same line ``obs tail`` prints when replaying a recorded stream.
    """

    def __init__(self, stream=None, target_msps=None):
        import sys

        from repro.obs.export import TARGET_MSPS

        self.stream = stream if stream is not None else sys.stderr
        self.target_msps = (
            TARGET_MSPS if target_msps is None else float(target_msps)
        )

    def emit(self, sample, snapshot=None):
        print(
            format_live_line(sample, target_msps=self.target_msps),
            file=self.stream,
        )

    def close(self):
        pass


__all__ = ["LiveCollector", "TtyDashboard"]
