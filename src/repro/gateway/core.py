"""Multi-tenant gateway core: admission, backpressure, delivery.

:class:`GatewayCore` is the transport-agnostic heart of ``repro
serve``: the asyncio server (:mod:`repro.gateway.server`), the
in-process load harness (:mod:`repro.gateway.loadgen`) and the tests
all drive this one object, so admission control and delivery semantics
are identical whichever way samples arrive.

Tenancy model
-------------
Each admitted tenant owns a bounded
:class:`repro.stream.ring.RingBufferSource` (its overrun accounting is
the shed ledger), one :class:`repro.gateway.tenant.TenantConsumer`
(private engine + reassembler — per-tenant session isolation), and a
pending-delivery queue the client drains with :meth:`poll`.  Nothing in
the gateway queues without bound: admission past ``max_tenants`` is
refused (``tenant-limit``), a block offered to a full ring is *shed*
and reported (``overrun``), and a draining gateway refuses new tenants
(``shutting-down``).

Scheduling
----------
With ``jobs=1`` tenants decode inline, round-robin one ring block per
tenant per :meth:`pump` pass.  With ``jobs>1`` the core owns a
``dynamic`` :class:`repro.runtime.workerpool.BlockWorkerPool`: admission
opens the tenant's consumer on the least-loaded worker, :meth:`pump`
forwards ring blocks with *targeted* publishes gated per-tenant by
``can_accept(key)`` (a slow tenant backpressures its own ring, never
the fleet's), and completed messages stream back mid-run on the pool's
emissions queue.  Per-tenant block order is preserved on both paths, so
decoded payloads are byte-identical serial vs pooled (benchmarked and
asserted in ``benchmarks/test_bench_gateway.py``).

Metrics (``gateway.*``): tenants admitted/rejected/active, blocks and
samples admitted/shed, frames/fragments/messages counters from the
consumers, a delivery-latency histogram, and
``gateway.realtime_margin_min`` — the worst per-tenant ingest margin
(stream-seconds admitted per wall-second since the tenant's first
submit; < 1.0 means some tenant is falling behind realtime).
"""

import time

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.gateway.errors import (
    ERR_DUPLICATE_TENANT,
    ERR_SHUTTING_DOWN,
    ERR_STREAM_ENDED,
    ERR_TENANT_LIMIT,
    ERR_UNKNOWN_TENANT,
    GatewayError,
)
from repro.gateway.tenant import tenant_consumer
from repro.obs.metrics import REGISTRY
from repro.runtime.workerpool import DEFAULT_QUEUE_BLOCKS, BlockWorkerPool
from repro.stream.ring import RingBufferSource

_ADMITTED = REGISTRY.counter("gateway.tenants_admitted")
_REJECTED = REGISTRY.counter("gateway.tenants_rejected")
_ACTIVE = REGISTRY.gauge("gateway.tenants_active")
_BLOCKS_ADMITTED = REGISTRY.counter("gateway.blocks_admitted")
_BLOCKS_SHED = REGISTRY.counter("gateway.blocks_shed")
_SAMPLES_ADMITTED = REGISTRY.counter("gateway.samples_admitted")
_SAMPLES_SHED = REGISTRY.counter("gateway.samples_shed")
_MARGIN_MIN = REGISTRY.gauge("gateway.realtime_margin_min")

#: Seconds finish_tenant waits for a pooled close result before giving up.
_FINISH_TIMEOUT_S = 60.0


class _TenantState:
    """Parent-side bookkeeping for one tenant stream."""

    __slots__ = (
        "tenant_id",
        "ring",
        "consumer",
        "pending",
        "finished",
        "result",
        "blocks_in",
        "samples_in",
        "sample_rate",
        "first_submit",
        "delivered",
    )

    def __init__(self, tenant_id, ring, sample_rate):
        self.tenant_id = tenant_id
        self.ring = ring
        self.consumer = None  # serial backend only
        self.pending = []
        self.finished = False
        self.result = None
        self.blocks_in = 0
        self.samples_in = 0
        self.sample_rate = float(sample_rate)
        self.first_submit = None
        self.delivered = 0

    def margin(self, now):
        """Stream-seconds admitted per wall-second since first submit."""
        if self.first_submit is None or self.samples_in == 0:
            return None
        elapsed = now - self.first_submit
        if elapsed <= 0:
            return None
        return (self.samples_in / self.sample_rate) / elapsed


class GatewayCore:
    """Admit tenants, schedule their blocks, deliver their messages.

    ``engine`` holds default :class:`~repro.stream.engine.StreamEngine`
    kwargs for every tenant; :meth:`admit` may override per tenant.
    ``jobs=1`` decodes inline; ``jobs>1`` multiplexes tenants across a
    shared dynamic worker pool.
    """

    def __init__(
        self,
        engine=None,
        max_tenants=8,
        ring_capacity=64,
        jobs=1,
        queue_blocks=DEFAULT_QUEUE_BLOCKS,
        mp_context=None,
        telemetry_blocks=None,
    ):
        self.engine_kwargs = dict(engine or {})
        self.max_tenants = int(max_tenants)
        if self.max_tenants <= 0:
            raise ValueError("max_tenants must be positive")
        self.ring_capacity = int(ring_capacity)
        self.jobs = max(1, int(jobs))
        self._tenants = {}
        self._draining = False
        self._closed = False
        self._pool = (
            BlockWorkerPool(
                tenant_consumer,
                {"engine": self.engine_kwargs},
                [],
                jobs=self.jobs,
                queue_blocks=queue_blocks,
                mp_context=mp_context,
                telemetry_blocks=telemetry_blocks,
                dynamic=True,
            )
            if self.jobs > 1
            else None
        )

    # -- admission -----------------------------------------------------------

    def admit(self, tenant_id, engine=None):
        """Register a tenant; refuses with an explicit code when full.

        ``engine`` overrides the gateway's default engine kwargs for
        this tenant only.  Returns an info dict (echoed to socket
        clients as the ``welcome`` response).
        """
        self._ensure_open()
        if self._draining:
            raise GatewayError(ERR_SHUTTING_DOWN, "gateway is draining")
        previous = self._tenants.get(tenant_id)
        if previous is not None:
            if not previous.finished:
                raise GatewayError(
                    ERR_DUPLICATE_TENANT,
                    f"tenant {tenant_id!r} already admitted",
                )
            # A finished stream releases its id: re-admission starts a
            # fresh session (new ring, new engine state, zeroed stats).
            # The old state's results were already handed back by
            # finish_tenant, and its pool key is closed, so nothing of
            # the previous session can leak into the new one.
            del self._tenants[tenant_id]
        if self._active_count() >= self.max_tenants:
            _REJECTED.inc()
            raise GatewayError(
                ERR_TENANT_LIMIT,
                f"tenant limit {self.max_tenants} reached",
            )
        merged = dict(self.engine_kwargs)
        merged.update(dict(engine or {}))
        state = _TenantState(
            tenant_id,
            RingBufferSource(capacity_blocks=self.ring_capacity),
            merged.get("sample_rate", WIFI_SAMPLE_RATE_20MHZ),
        )
        if self._pool is not None:
            self._pool.open_key(
                tenant_id, {"engine": merged} if engine else None
            )
        else:
            state.consumer = tenant_consumer({"engine": merged}, tenant_id)
        self._tenants[tenant_id] = state
        _ADMITTED.inc()
        _ACTIVE.set(self._active_count())
        return {
            "tenant": tenant_id,
            "ring_capacity": self.ring_capacity,
            "sample_rate": state.sample_rate,
            "jobs": self.jobs,
        }

    # -- ingest --------------------------------------------------------------

    def submit(self, tenant_id, block):
        """Offer one sample block; ``False`` means shed (ring overrun).

        Shedding is the designed overload behaviour — the ring bounds
        memory and the loss is accounted (``gateway.blocks_shed``, the
        tenant's ring stats) instead of queueing without limit.
        """
        state = self._require(tenant_id)
        if state.finished:
            raise GatewayError(
                ERR_STREAM_ENDED, f"tenant {tenant_id!r} already finished"
            )
        block = np.asarray(block)
        if state.first_submit is None:
            state.first_submit = time.monotonic()
        accepted = state.ring.push(block)
        if accepted:
            state.blocks_in += 1
            state.samples_in += int(block.size)
            _BLOCKS_ADMITTED.inc()
            _SAMPLES_ADMITTED.inc(int(block.size))
        else:
            _BLOCKS_SHED.inc()
            _SAMPLES_SHED.inc(int(block.size))
        self.pump()
        return accepted

    # -- scheduling ----------------------------------------------------------

    def pump(self):
        """Move ring blocks into decode; never blocks on a full worker.

        Round-robin, one block per tenant per pass, so a deep ring
        cannot starve its neighbours.  On the pooled backend a tenant's
        block only moves when *its* worker queue has room.
        """
        self._ensure_open()
        if self._pool is None:
            progressed = True
            while progressed:
                progressed = False
                for state in self._tenants.values():
                    if state.finished:
                        continue
                    block = state.ring.pop()
                    if block is None:
                        continue
                    messages = state.consumer.process(block)
                    if messages:
                        state.pending.extend(messages)
                    progressed = True
        else:
            progressed = True
            while progressed:
                progressed = False
                for state in self._tenants.values():
                    if state.finished or not len(state.ring):
                        continue
                    if not self._pool.can_accept(state.tenant_id):
                        continue
                    self._pool.publish(state.ring.pop(), key=state.tenant_id)
                    progressed = True
            self._drain_pool()
        self._update_margin()

    # -- delivery ------------------------------------------------------------

    def poll(self, tenant_id):
        """Drain the tenant's completed messages accumulated so far."""
        state = self._require(tenant_id)
        self.pump()
        messages, state.pending = state.pending, []
        state.delivered += len(messages)
        return messages

    def finish_tenant(self, tenant_id, timeout_s=_FINISH_TIMEOUT_S):
        """End a tenant's stream: flush its ring, engine and reassembler.

        Returns ``{"messages": [...], "stats": {...}}`` with every
        not-yet-polled message (including trailing ones the engine only
        emits at flush).  The finished state stays registered for
        ``tenant_stats`` until the id is re-admitted — finishing
        releases the id, and a later :meth:`admit` under the same id
        starts a completely fresh session.
        """
        state = self._require(tenant_id)
        if state.finished:
            raise GatewayError(
                ERR_STREAM_ENDED, f"tenant {tenant_id!r} already finished"
            )
        state.ring.close()
        if self._pool is None:
            for block in state.ring:
                messages = state.consumer.process(block)
                if messages:
                    state.pending.extend(messages)
            self._finalize(state, state.consumer.finish())
        else:
            for block in state.ring:
                # Blocking publish: the ring is bounded, so this drains
                # a bounded backlog through bounded worker queues.
                self._pool.publish(block, key=tenant_id)
            self._pool.close_key(tenant_id)
            deadline = time.monotonic() + float(timeout_s)
            while not state.finished:
                self._drain_pool()
                if state.finished:
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"timed out waiting for tenant {tenant_id!r} close"
                    )
                time.sleep(0.001)
        _ACTIVE.set(self._active_count())
        self._update_margin()
        messages, state.pending = state.pending, []
        state.delivered += len(messages)
        return {"messages": messages, "stats": self.tenant_stats(tenant_id)}

    # -- lifecycle -----------------------------------------------------------

    def drain(self):
        """Graceful shutdown: finish every active tenant, close the pool.

        Returns ``{tenant_id: finish_tenant result}`` for tenants that
        were still active — their undelivered messages, so a shutdown
        never silently discards completed work.
        """
        self._draining = True
        results = {}
        for tenant_id in list(self._tenants):
            if not self._tenants[tenant_id].finished:
                results[tenant_id] = self.finish_tenant(tenant_id)
        self.close()
        return results

    def close(self):
        """Tear down the pool (joining it cleanly if possible); idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._pool is None:
            return
        try:
            late = self._pool.join()
            for kind, key, value in self._pool.drain_emitted():
                state = self._tenants.get(key)
                if state is None:
                    continue
                if kind == "emit":
                    state.pending.extend(value)
                else:
                    self._finalize(state, value)
            for key, result in late.items():
                state = self._tenants.get(key)
                if state is not None and not state.finished:
                    self._finalize(state, result)
        finally:
            self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- introspection -------------------------------------------------------

    @property
    def draining(self):
        return self._draining

    def tenant_ids(self):
        return list(self._tenants)

    def tenant_stats(self, tenant_id):
        state = self._require(tenant_id)
        now = time.monotonic()
        return {
            "tenant": tenant_id,
            "finished": state.finished,
            "blocks_in": state.blocks_in,
            "samples_in": state.samples_in,
            "ring": state.ring.stats(),
            "pending_messages": len(state.pending),
            "delivered_messages": state.delivered,
            "realtime_margin": state.margin(now),
            "engine": state.result["engine"] if state.result else None,
            "reassembly": state.result["reassembly"] if state.result else None,
        }

    def stats(self):
        return {
            "max_tenants": self.max_tenants,
            "ring_capacity": self.ring_capacity,
            "jobs": self.jobs,
            "active_tenants": self._active_count(),
            "draining": self._draining,
            "tenants": {tid: self.tenant_stats(tid) for tid in self._tenants},
            "pool": self._pool.stats() if self._pool is not None else None,
        }

    # -- internals -----------------------------------------------------------

    def _ensure_open(self):
        if self._closed:
            raise ValueError("gateway core is closed")

    def _require(self, tenant_id):
        state = self._tenants.get(tenant_id)
        if state is None:
            raise GatewayError(
                ERR_UNKNOWN_TENANT, f"unknown tenant {tenant_id!r}"
            )
        return state

    def _active_count(self):
        return sum(1 for s in self._tenants.values() if not s.finished)

    def _drain_pool(self):
        for kind, key, value in self._pool.drain_emitted():
            state = self._tenants.get(key)
            if state is None:
                continue
            if kind == "emit":
                state.pending.extend(value)
            else:
                self._finalize(state, value)

    def _finalize(self, state, result):
        state.pending.extend(result.get("messages") or [])
        state.result = result
        state.finished = True

    def _update_margin(self):
        now = time.monotonic()
        margins = [
            margin
            for state in self._tenants.values()
            if not state.finished
            for margin in [state.margin(now)]
            if margin is not None
        ]
        if margins:
            _MARGIN_MIN.set(min(margins))


__all__ = ["GatewayCore"]
