"""Gateway error codes: every rejection is explicit and machine-readable.

The admission-control contract is that the gateway never queues without
bound — anything it cannot take *right now* is refused with one of these
codes, both in-process (:class:`GatewayError`) and on the wire (the
``error`` / non-accepted responses of :mod:`repro.gateway.protocol`).
"""

#: Admission refused: the configured tenant cap is reached.
ERR_TENANT_LIMIT = "tenant-limit"
#: Admission refused: a tenant with this id is already registered.
ERR_DUPLICATE_TENANT = "duplicate-tenant"
#: Request names a tenant the gateway has never admitted.
ERR_UNKNOWN_TENANT = "unknown-tenant"
#: Samples offered to a tenant whose stream is already finished.
ERR_STREAM_ENDED = "stream-ended"
#: A submitted block was shed by the tenant's bounded ring (overrun).
ERR_OVERRUN = "overrun"
#: The request was malformed (bad frame, bad JSON, missing field,
#: oversized payload, unknown request type...).
ERR_BAD_REQUEST = "bad-request"
#: The gateway is draining for shutdown and admits no new work.
ERR_SHUTTING_DOWN = "shutting-down"
#: The gateway hit an internal failure serving the request.
ERR_INTERNAL = "internal"


class GatewayError(Exception):
    """A gateway refusal with a machine-readable ``code``."""

    def __init__(self, code, message):
        super().__init__(message)
        self.code = code
        self.message = message


__all__ = [
    "ERR_TENANT_LIMIT",
    "ERR_DUPLICATE_TENANT",
    "ERR_UNKNOWN_TENANT",
    "ERR_STREAM_ENDED",
    "ERR_OVERRUN",
    "ERR_BAD_REQUEST",
    "ERR_SHUTTING_DOWN",
    "ERR_INTERNAL",
    "GatewayError",
]
