"""Length-prefixed request/response wire protocol for the gateway.

Framing: ``!II`` big-endian ``(header_len, payload_len)`` followed by a
UTF-8 JSON header and an opaque payload.  The JSON carries control
fields (request ``type``, tenant id, dtype, error codes); bulk sample
data rides the payload raw (little-endian numpy complex64/complex128
bytes), so a 256k-sample block costs 2 MiB on the wire, not a JSON
number per sample.  Both lengths are bounded (1 MiB header, 64 MiB
payload) — an oversized frame is a ``bad-request``, never an unbounded
allocation.

Request types (client → gateway):

========  ==========================================  =================
type      header fields                               payload
========  ==========================================  =================
hello     ``tenant``, optional ``engine`` kwargs      —
samples   ``tenant``, ``dtype``, ``count``            raw sample bytes
poll      ``tenant``                                  —
finish    ``tenant``                                  —
stats     optional ``tenant``                         —
bye       —                                           —
========  ==========================================  =================

Responses: ``welcome``, ``accepted`` (``accepted`` bool + ``code``
``"overrun"`` when the tenant's ring shed the block), ``deliveries``,
``finished``, ``stats``, ``goodbye``, and ``error`` with a
machine-readable ``code`` from :mod:`repro.gateway.errors`.  Message
payload bytes are hex-encoded in delivery headers (``data_hex``) so the
response stays one JSON document.

The module is transport-symmetric: asyncio helpers for the server, a
blocking :class:`GatewayClient` (stdlib ``socket``) for the load
generator and CI smoke.
"""

import asyncio
import json
import socket
import struct
import time

import numpy as np

from repro.gateway.errors import ERR_BAD_REQUEST, GatewayError

#: Wire frame prefix: header length, payload length.
_PREFIX = struct.Struct("!II")
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 26

#: Sample dtypes a gateway accepts — the streaming engine's two
#: canonical working precisions.
SAMPLE_DTYPES = ("complex64", "complex128")


class ProtocolError(ValueError):
    """A malformed wire frame (maps to the ``bad-request`` code)."""


def pack_message(header, payload=b""):
    """Serialize one ``(header dict, payload bytes)`` wire frame."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError("header too large")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError("payload too large")
    return _PREFIX.pack(len(header_bytes), len(payload)) + header_bytes + bytes(payload)


def _parse_prefix(prefix):
    header_len, payload_len = _PREFIX.unpack(prefix)
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} exceeds bound")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload length {payload_len} exceeds bound")
    return header_len, payload_len


def _parse_header(header_bytes):
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad header JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    return header


# -- sample blocks -----------------------------------------------------------


def encode_block(samples):
    """Sample array → ``(header fields, payload bytes)``."""
    samples = np.ascontiguousarray(samples)
    dtype = samples.dtype.name
    if dtype not in SAMPLE_DTYPES:
        raise ProtocolError(f"unsupported sample dtype {dtype!r}")
    return {"dtype": dtype, "count": int(samples.size)}, samples.tobytes()


def decode_block(header, payload):
    """``samples`` request → read-only sample array (``bad-request`` safe)."""
    dtype = header.get("dtype")
    if dtype not in SAMPLE_DTYPES:
        raise ProtocolError(f"unsupported sample dtype {dtype!r}")
    count = header.get("count")
    np_dtype = np.dtype(dtype)
    if not isinstance(count, int) or count < 0:
        raise ProtocolError("count must be a non-negative integer")
    if count * np_dtype.itemsize != len(payload):
        raise ProtocolError(
            f"payload is {len(payload)} bytes; "
            f"{count} x {dtype} needs {count * np_dtype.itemsize}"
        )
    block = np.frombuffer(payload, dtype=np_dtype, count=count)
    block.flags.writeable = False
    return block


def message_to_wire(message):
    """Delivery dict (raw bytes) → JSON-safe dict (``data_hex``)."""
    wire = {k: v for k, v in message.items() if k != "data"}
    wire["data_hex"] = message["data"].hex()
    return wire


def message_from_wire(wire):
    """Inverse of :func:`message_to_wire`."""
    message = {k: v for k, v in wire.items() if k != "data_hex"}
    message["data"] = bytes.fromhex(wire["data_hex"])
    return message


# -- asyncio side ------------------------------------------------------------


async def read_message(reader):
    """Read one frame; ``None`` on clean EOF, :class:`ProtocolError` on junk."""
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    header_len, payload_len = _parse_prefix(prefix)
    try:
        header_bytes = await reader.readexactly(header_len)
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _parse_header(header_bytes), payload


async def write_message(writer, header, payload=b""):
    writer.write(pack_message(header, payload))
    await writer.drain()


# -- blocking client ---------------------------------------------------------


def _recv_exactly(sock, n):
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class GatewayClient:
    """Blocking gateway client for harnesses, smoke tests and scripts.

    ``connect_wait_s`` retries the initial connection — the CI smoke
    starts ``serve`` in the background and polls until it listens.
    An ``error`` response raises :class:`~repro.gateway.errors.GatewayError`
    with the server's code; every other response returns as a dict.
    """

    def __init__(self, host, port, timeout_s=30.0, connect_wait_s=0.0):
        self._sock = None
        deadline = time.monotonic() + float(connect_wait_s)
        while True:
            try:
                self._sock = socket.create_connection(
                    (host, int(port)), timeout=float(timeout_s)
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    def request(self, header, payload=b""):
        self._sock.sendall(pack_message(header, payload))
        prefix = _recv_exactly(self._sock, _PREFIX.size)
        header_len, payload_len = _parse_prefix(prefix)
        response = _parse_header(_recv_exactly(self._sock, header_len))
        _recv_exactly(self._sock, payload_len)  # responses carry no payload
        if response.get("type") == "error":
            raise GatewayError(
                response.get("code", ERR_BAD_REQUEST),
                response.get("message", "gateway error"),
            )
        return response

    def hello(self, tenant, engine=None):
        header = {"type": "hello", "tenant": tenant}
        if engine:
            header["engine"] = dict(engine)
        return self.request(header)

    def send_samples(self, tenant, samples):
        fields, payload = encode_block(samples)
        header = {"type": "samples", "tenant": tenant, **fields}
        return self.request(header, payload)

    def poll(self, tenant):
        response = self.request({"type": "poll", "tenant": tenant})
        return [message_from_wire(m) for m in response.get("messages", [])]

    def finish(self, tenant):
        response = self.request({"type": "finish", "tenant": tenant})
        messages = [message_from_wire(m) for m in response.get("messages", [])]
        return messages, response.get("stats")

    def stats(self, tenant=None):
        header = {"type": "stats"}
        if tenant is not None:
            header["tenant"] = tenant
        return self.request(header).get("stats")

    def bye(self):
        return self.request({"type": "bye"})

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "SAMPLE_DTYPES",
    "ProtocolError",
    "GatewayClient",
    "pack_message",
    "encode_block",
    "decode_block",
    "message_to_wire",
    "message_from_wire",
    "read_message",
    "write_message",
]
