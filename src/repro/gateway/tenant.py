"""Per-tenant decode session: one engine + server-side reassembly.

:class:`TenantConsumer` is the unit of tenancy the gateway multiplexes:
a private :class:`repro.stream.engine.StreamEngine` (sessions, channel
state and arbitration fully isolated from every other tenant) feeding a
private :class:`repro.transport.streamrx.StreamReassembler`, so what
comes out is not frames but the tenant's *reassembled messages* — the
FreeBee-style delivery receipt a gateway client actually wants.

The same class runs on both gateway backends, which is what makes the
serial/pooled payload-identity contract hold by construction:

* ``jobs=1`` — :class:`repro.gateway.core.GatewayCore` instantiates it
  in-process and calls :meth:`process` inline;
* pooled — :func:`tenant_consumer` is the picklable factory handed to
  :class:`repro.runtime.workerpool.BlockWorkerPool`; a non-empty
  :meth:`process` return rides the pool's emissions queue back to the
  parent mid-run.

Message dicts carry raw ``bytes`` payloads; the wire layer
(:mod:`repro.gateway.protocol`) hex-encodes them.  ``latency_s`` is
wall-clock (first fragment decoded → message completed) and, like
``stream.health.*``, is explicitly *outside* the serial==pooled
identity contract; every other field and all ``gateway.*`` counters
are deterministic.
"""

import time

from repro.obs.metrics import REGISTRY
from repro.stream.engine import StreamEngine
from repro.transport.pdu import decode_fragment
from repro.transport.streamrx import StreamReassembler

_FRAMES = REGISTRY.counter("gateway.frames_decoded")
_FRAGMENTS = REGISTRY.counter("gateway.fragments_accepted")
_MESSAGES = REGISTRY.counter("gateway.messages_delivered")
_MESSAGE_BYTES = REGISTRY.counter("gateway.message_bytes_delivered")
#: Wall seconds from a message's first decoded fragment to its
#: completion — the reassembly span a client waits through.
_LATENCY = REGISTRY.histogram(
    "gateway.delivery_latency_seconds",
    edges=(0.001, 0.005, 0.02, 0.05, 0.2, 1.0, 5.0),
)


class TenantConsumer:
    """One tenant's engine + reassembler; pool-consumer shaped.

    ``config`` is a dict whose ``"engine"`` entry holds
    :class:`~repro.stream.engine.StreamEngine` kwargs (missing/empty →
    engine defaults).  ``key`` is the tenant id.
    """

    def __init__(self, config, key):
        config = dict(config or {})
        self.tenant_id = key
        self.engine = StreamEngine(**dict(config.get("engine") or {}))
        self.reassembler = StreamReassembler()
        #: (channel, msg_id, frag_count) -> wall time of first fragment.
        self._first_seen = {}

    def process(self, block):
        """Decode one block; returns new message dicts or ``None``."""
        messages = self._deliver(self.engine.process_block(block))
        return messages or None

    def finish(self):
        """Flush the engine; returns trailing messages + session stats."""
        return {
            "tenant": self.tenant_id,
            "messages": self._deliver(self.engine.finish()),
            "engine": self.engine.stats(),
            "reassembly": {
                "fragments_accepted": self.reassembler.fragments_accepted,
                "frames_rejected": self.reassembler.frames_rejected,
                "messages_completed": self.reassembler.messages_completed,
                "pending": self.reassembler.pending,
            },
        }

    def _deliver(self, stream_frames):
        messages = []
        for stream_frame in stream_frames:
            _FRAMES.inc()
            frame = stream_frame.frame
            fragment = (
                decode_fragment(frame.frame_type, frame.sequence, frame.data_bits)
                if frame is not None
                else None
            )
            now = time.monotonic()
            key = None
            if fragment is not None:
                _FRAGMENTS.inc()
                key = (
                    getattr(stream_frame, "zigbee_channel", None),
                    fragment.msg_id,
                    fragment.frag_count,
                )
                self._first_seen.setdefault(key, now)
            completed = self.reassembler.push(stream_frame)
            if completed is None:
                continue
            latency = now - self._first_seen.pop(key, now)
            _MESSAGES.inc()
            _MESSAGE_BYTES.inc(len(completed.data))
            _LATENCY.observe(latency)
            messages.append(
                {
                    "msg_id": completed.msg_id,
                    "data": completed.data,
                    "frag_count": completed.frag_count,
                    "duplicates": completed.duplicates,
                    "zigbee_channel": completed.zigbee_channel,
                    "latency_s": latency,
                }
            )
        return messages


def tenant_consumer(config, key):
    """Picklable pool factory: build one tenant's consumer."""
    return TenantConsumer(config, key)


__all__ = ["TenantConsumer", "tenant_consumer"]
