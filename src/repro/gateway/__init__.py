"""Async multi-tenant stream-serving gateway.

The serving layer over :mod:`repro.stream`: a long-running process that
admits N concurrent tenant sample streams, multiplexes their private
:class:`~repro.stream.engine.StreamEngine` sessions across one shared
:class:`~repro.runtime.workerpool.BlockWorkerPool`, and serves back
*reassembled transport messages* (not raw frames) over a
length-prefixed request/response protocol, with ``gateway.*`` metrics
scrapeable at ``/metrics``.

Layers, bottom up:

* :mod:`repro.gateway.tenant` — one tenant's engine + reassembler, the
  unit both backends share (that is the serial==pooled identity);
* :mod:`repro.gateway.core` — admission control, bounded per-tenant
  rings, fair pumping, delivery queues (transport-agnostic);
* :mod:`repro.gateway.protocol` — the wire format + blocking client;
* :mod:`repro.gateway.server` — asyncio listeners, ``/metrics``,
  signal-driven graceful drain;
* :mod:`repro.gateway.loadgen` — the deterministic N×M load harness
  with byte-exact delivery verification.

Entry points: ``python -m repro serve`` and ``python -m repro loadgen``;
see ``docs/gateway.md``.
"""

from repro.gateway.core import GatewayCore
from repro.gateway.errors import GatewayError
from repro.gateway.loadgen import run_loadgen
from repro.gateway.protocol import GatewayClient, ProtocolError
from repro.gateway.server import GatewayServer
from repro.gateway.tenant import TenantConsumer, tenant_consumer

__all__ = [
    "GatewayCore",
    "GatewayError",
    "GatewayServer",
    "GatewayClient",
    "ProtocolError",
    "TenantConsumer",
    "tenant_consumer",
    "run_loadgen",
]
