"""Asyncio gateway server: tenant sockets, /metrics, graceful shutdown.

:class:`GatewayServer` wraps one :class:`repro.gateway.core.GatewayCore`
behind two listeners:

* the **tenant port** speaks the length-prefixed protocol of
  :mod:`repro.gateway.protocol` — many concurrent client connections,
  each request dispatched inline on the event loop (core calls are
  synchronous, so every request is atomic; no locks needed);
* the optional **metrics port** answers ``GET /metrics`` with the
  process registry rendered by
  :func:`repro.obs.export.render_prometheus` — the same exposition the
  file sink writes, scrape-able while streams are live.

A background pump task keeps tenant rings moving between requests and
ticks an optional :class:`repro.obs.live.LiveCollector`.

Graceful shutdown (SIGINT/SIGTERM via :meth:`run`, or
:meth:`shutdown`): stop accepting connections, finish every active
tenant — draining rings, flushing channelizer state, joining the worker
pool so every shared-memory segment is unlinked — then finalize the
collector.  A gateway killed politely exits 0 with nothing leaked.

Error contract per connection: a :class:`~repro.gateway.errors.GatewayError`
maps to an ``error`` response (connection stays open — refusals are part
of normal service); a :class:`~repro.gateway.protocol.ProtocolError`
gets a ``bad-request`` error and the connection dropped (framing is
gone); anything else answers ``internal`` and drops.
"""

import asyncio
import contextlib
import logging
import signal

from repro.gateway.errors import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_OVERRUN,
    GatewayError,
)
from repro.gateway.protocol import (
    ProtocolError,
    decode_block,
    message_to_wire,
    read_message,
    write_message,
)
from repro.obs.export import render_prometheus
from repro.obs.metrics import REGISTRY

_LOG = logging.getLogger("repro.gateway")

_CONNECTIONS = REGISTRY.counter("gateway.connections")
_REQUESTS = REGISTRY.counter("gateway.requests")
_SCRAPES = REGISTRY.counter("gateway.metrics_scrapes")

#: Seconds between background pump passes while the server idles.
_PUMP_INTERVAL_S = 0.005


class GatewayServer:
    """Serve one :class:`~repro.gateway.core.GatewayCore` over asyncio."""

    def __init__(
        self, core, host="127.0.0.1", port=7713, metrics_port=None, collector=None
    ):
        self.core = core
        self.host = host
        self.port = int(port)
        self.metrics_port = None if metrics_port is None else int(metrics_port)
        self.collector = collector
        self._server = None
        self._metrics_server = None
        self._pump_task = None
        self._stop_event = None
        self._shut_down = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind both listeners and start the pump task."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.host, self.metrics_port
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        if self.collector is not None:
            self.collector.start()
        self._pump_task = asyncio.create_task(self._pump_loop())
        _LOG.info(
            "gateway listening on %s:%d (metrics: %s)",
            self.host,
            self.port,
            self.metrics_port,
        )

    async def shutdown(self):
        """Drain and tear down; idempotent, never raises on double call."""
        if self._shut_down:
            return
        self._shut_down = True
        self._stop_event.set()
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        if self._pump_task is not None:
            self._pump_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._pump_task
        # Finish every live tenant: rings drained, channelizers flushed,
        # pool joined and its segments unlinked.  Undelivered messages
        # are counted, not silently dropped.
        undelivered = self.core.drain()
        dropped = sum(len(r["messages"]) for r in undelivered.values())
        if dropped:
            _LOG.warning(
                "shutdown drained %d undelivered message(s) from %d tenant(s)",
                dropped,
                len(undelivered),
            )
        if self.collector is not None:
            self.collector.finalize()
        _LOG.info("gateway shut down cleanly")

    async def run(self, install_signal_handlers=True, on_started=None):
        """Start, serve until SIGINT/SIGTERM (or :meth:`shutdown`), drain."""
        await self.start()
        if on_started is not None:
            on_started(self)
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self._stop_event.set)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support in loops
        try:
            await self._stop_event.wait()
        finally:
            await self.shutdown()

    async def _pump_loop(self):
        while not self._stop_event.is_set():
            self.core.pump()
            if self.collector is not None:
                self.collector.maybe_tick()
            await asyncio.sleep(_PUMP_INTERVAL_S)

    # -- tenant protocol -----------------------------------------------------

    async def _handle_client(self, reader, writer):
        _CONNECTIONS.inc()
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(
                        writer,
                        {
                            "type": "error",
                            "code": ERR_BAD_REQUEST,
                            "message": str(exc),
                        },
                    )
                    return
                if message is None:
                    return
                header, payload = message
                _REQUESTS.inc()
                try:
                    response = self._dispatch(header, payload)
                except ProtocolError as exc:
                    await write_message(
                        writer,
                        {
                            "type": "error",
                            "code": ERR_BAD_REQUEST,
                            "message": str(exc),
                        },
                    )
                    return
                except GatewayError as exc:
                    await write_message(
                        writer,
                        {
                            "type": "error",
                            "code": exc.code,
                            "message": exc.message,
                        },
                    )
                    continue
                except Exception:
                    _LOG.exception("request failed")
                    await write_message(
                        writer,
                        {
                            "type": "error",
                            "code": ERR_INTERNAL,
                            "message": "internal gateway error",
                        },
                    )
                    return
                await write_message(writer, response)
                if response.get("type") == "goodbye":
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _dispatch(self, header, payload):
        rtype = header.get("type")
        if rtype == "hello":
            info = self.core.admit(
                self._tenant_of(header), header.get("engine")
            )
            return {"type": "welcome", **info}
        if rtype == "samples":
            block = decode_block(header, payload)
            accepted = self.core.submit(self._tenant_of(header), block)
            response = {"type": "accepted", "accepted": bool(accepted)}
            if not accepted:
                response["code"] = ERR_OVERRUN
            return response
        if rtype == "poll":
            messages = self.core.poll(self._tenant_of(header))
            return {
                "type": "deliveries",
                "messages": [message_to_wire(m) for m in messages],
            }
        if rtype == "finish":
            result = self.core.finish_tenant(self._tenant_of(header))
            return {
                "type": "finished",
                "messages": [message_to_wire(m) for m in result["messages"]],
                "stats": result["stats"],
            }
        if rtype == "stats":
            tenant = header.get("tenant")
            stats = (
                self.core.tenant_stats(tenant)
                if tenant is not None
                else self.core.stats()
            )
            return {"type": "stats", "stats": stats}
        if rtype == "bye":
            return {"type": "goodbye"}
        raise ProtocolError(f"unknown request type {rtype!r}")

    @staticmethod
    def _tenant_of(header):
        tenant = header.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("request needs a non-empty string tenant")
        return tenant

    # -- metrics endpoint ----------------------------------------------------

    async def _handle_metrics(self, reader, writer):
        """Minimal HTTP/1.0 responder for ``GET /metrics``."""
        try:
            request_line = await reader.readline()
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else ""
            if len(parts) < 2 or parts[0] != "GET" or path not in (
                "/metrics",
                "/metrics/",
            ):
                body = b"not found\n"
                status = "404 Not Found"
                content_type = "text/plain"
            else:
                _SCRAPES.inc()
                body = render_prometheus(REGISTRY.snapshot()).encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


__all__ = ["GatewayServer"]
