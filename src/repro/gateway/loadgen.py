"""Deterministic gateway load harness: N tenants × M senders, seeded.

Each tenant's offered load is a :class:`repro.network.traffic.StreamTraffic`
capture — M scripted senders, each airing the transport fragments of one
known message (the :func:`repro.transport.segmentation.segment_message` →
:func:`repro.transport.pdu.encode_fragment` path), rendered through the
shared WiFi front end with its noise floor.  Everything draws from
``numpy.random.default_rng([seed, tenant_index, ...])`` streams, so two
runs with the same arguments offer sample-identical load — which is what
lets the harness assert *byte-exact* delivery, not just counts: every
message whose fragments all aired must come back from the gateway with
exactly the bytes the sender fragmented.

The same workloads drive both gateway faces:

* :func:`drive_core` — in-process against a
  :class:`repro.gateway.core.GatewayCore` (the benchmark path);
* :func:`drive_client` — over the wire through a
  :class:`repro.gateway.protocol.GatewayClient` (the CI smoke path).

Blocks are submitted round-robin across tenants — the multiplexing
pattern a real gateway sees — with periodic polls so delivery flows
mid-stream, then a ``finish`` per tenant flushes the trailing state.
:func:`run_loadgen` wraps build → drive → verify into one report dict;
``repro loadgen`` prints it as a table and exits non-zero unless every
tenant was byte-exact.
"""

import time
from dataclasses import dataclass, field

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.gateway.core import GatewayCore
from repro.network.traffic import StreamSender, StreamTraffic
from repro.transport.pdu import (
    MAX_MSG_ID,
    encode_fragment,
    payload_capacity,
    scheme_id,
)
from repro.transport.segmentation import segment_message

#: Default FEC scheme name for scripted fragments (see repro.transport).
DEFAULT_SCHEME = "hamming"


@dataclass
class TenantWorkload:
    """One tenant's precomputed offered load + ground truth."""

    tenant_id: str
    samples: np.ndarray
    #: (zigbee_channel, msg_id) -> the exact message bytes that must
    #: come back (every fragment of it aired).
    expected: dict
    sample_rate: float
    #: Messages scripted but not fully aired (arrival jitter ran the
    #: capture out of room) — excluded from the delivery contract.
    incomplete: int = 0
    engine: "dict | None" = None
    delivered: list = field(default_factory=list)
    shed_blocks: int = 0

    @property
    def stream_seconds(self):
        return self.samples.size / self.sample_rate


def build_workloads(
    tenants,
    senders,
    seed,
    duration_s=0.03,
    message_bytes=5,
    scheme=DEFAULT_SCHEME,
    channels=(13,),
    reading_interval_s=0.0015,
    sample_rate=WIFI_SAMPLE_RATE_20MHZ,
    engine=None,
    dtype=None,
):
    """Synthesize every tenant's capture + expected-delivery ground truth.

    Senders spread round-robin over ``channels``; each sender fragments
    one seeded ``message_bytes``-byte message under ``scheme`` and airs
    it as scripted transport frames.  ``msg_id`` is the sender's index
    on its channel, so reassembly keys never collide — which caps
    senders at ``16 * len(channels)`` per tenant (4-bit msg_id).
    """
    tenants = int(tenants)
    senders = int(senders)
    channels = list(channels)
    if senders > MAX_MSG_ID * len(channels):
        raise ValueError(
            f"at most {MAX_MSG_ID * len(channels)} senders per tenant on "
            f"{len(channels)} channel(s) (4-bit msg_id)"
        )
    scheme = scheme_id(scheme) if isinstance(scheme, str) else int(scheme)
    fragment_bits = payload_capacity(scheme)
    workloads = []
    for tenant_index in range(tenants):
        script_rng = np.random.default_rng([int(seed), tenant_index, 0])
        capture_rng = np.random.default_rng([int(seed), tenant_index, 1])
        sender_objs = []
        scripted = {}
        for sender_index in range(senders):
            channel = channels[sender_index % len(channels)]
            msg_id = sender_index // len(channels)
            message = script_rng.bytes(int(message_bytes))
            fragments = segment_message(
                message, msg_id=msg_id, fragment_bits=fragment_bits
            )
            script = tuple(encode_fragment(f, scheme) for f in fragments)
            sender_objs.append(
                StreamSender(
                    sender_id=sender_index,
                    zigbee_channel=channel,
                    reading_interval_s=float(reading_interval_s),
                    frames=script,
                )
            )
            scripted[sender_index] = (channel, msg_id, len(script), message)
        traffic = StreamTraffic(
            sender_objs,
            sample_rate=sample_rate,
            duration_s=float(duration_s),
        )
        samples, truth = traffic.capture(capture_rng)
        if dtype is not None:
            samples = np.asarray(samples, dtype=dtype)
        # A message is owed back only when all its fragments aired.
        aired = {}
        for record in truth:
            aired.setdefault(record.sender_id, set()).add(record.sequence)
        expected = {}
        incomplete = 0
        for sender_index, (channel, msg_id, n_frags, message) in scripted.items():
            if aired.get(sender_index, set()) >= set(range(n_frags)):
                expected[(channel, msg_id)] = message
            else:
                incomplete += 1
        workloads.append(
            TenantWorkload(
                tenant_id=f"tenant-{tenant_index}",
                samples=samples,
                expected=expected,
                incomplete=incomplete,
                sample_rate=float(sample_rate),
                engine=dict(engine) if engine else None,
            )
        )
    return workloads


def _blocks_of(workload, block_size):
    samples = workload.samples
    return [
        samples[lo : lo + int(block_size)]
        for lo in range(0, samples.size, int(block_size))
    ]


def drive_core(core, workloads, block_size=16384, poll_every=8):
    """Offer every workload to an in-process core, round-robin.

    Fills each workload's ``delivered`` / ``shed_blocks`` in place and
    returns the wall seconds the drive took (admit → last finish).
    """
    t0 = time.perf_counter()
    for workload in workloads:
        core.admit(workload.tenant_id, workload.engine)
    pending = [(w, _blocks_of(w, block_size)) for w in workloads]
    cursors = [0] * len(pending)
    submitted = 0
    while True:
        progressed = False
        for index, (workload, blocks) in enumerate(pending):
            if cursors[index] >= len(blocks):
                continue
            accepted = core.submit(workload.tenant_id, blocks[cursors[index]])
            cursors[index] += 1
            progressed = True
            submitted += 1
            if not accepted:
                workload.shed_blocks += 1
            if submitted % int(poll_every) == 0:
                workload.delivered.extend(core.poll(workload.tenant_id))
        if not progressed:
            break
    for workload in workloads:
        result = core.finish_tenant(workload.tenant_id)
        workload.delivered.extend(result["messages"])
    return time.perf_counter() - t0


def drive_client(client, workloads, block_size=16384, poll_every=8):
    """Same offered pattern as :func:`drive_core`, over the wire."""
    t0 = time.perf_counter()
    for workload in workloads:
        client.hello(workload.tenant_id, workload.engine)
    pending = [(w, _blocks_of(w, block_size)) for w in workloads]
    cursors = [0] * len(pending)
    submitted = 0
    while True:
        progressed = False
        for index, (workload, blocks) in enumerate(pending):
            if cursors[index] >= len(blocks):
                continue
            response = client.send_samples(
                workload.tenant_id, blocks[cursors[index]]
            )
            cursors[index] += 1
            progressed = True
            submitted += 1
            if not response.get("accepted"):
                workload.shed_blocks += 1
            if submitted % int(poll_every) == 0:
                workload.delivered.extend(client.poll(workload.tenant_id))
        if not progressed:
            break
    for workload in workloads:
        messages, _stats = client.finish(workload.tenant_id)
        workload.delivered.extend(messages)
    return time.perf_counter() - t0


def verify(workloads):
    """Score delivered vs expected; per-tenant rows + overall verdict.

    Byte-exact means: every expected message arrived with exactly the
    fragmented bytes, and nothing arrived corrupted (an unexpected
    (channel, msg_id) is tolerated only if the stream double-delivered —
    it never is — so any extra counts against the tenant).
    """
    rows = []
    all_exact = True
    for workload in workloads:
        got = {
            (m["zigbee_channel"], m["msg_id"]): m["data"]
            for m in workload.delivered
        }
        matched = sum(
            1
            for key, message in workload.expected.items()
            if got.get(key) == message
        )
        extra = len(got) - sum(1 for key in got if key in workload.expected)
        byte_exact = (
            matched == len(workload.expected)
            and len(workload.delivered) == len(got)  # no duplicate deliveries
            and extra == 0
        )
        all_exact = all_exact and byte_exact
        rows.append(
            {
                "tenant": workload.tenant_id,
                "expected": len(workload.expected),
                "delivered": len(workload.delivered),
                "matched": matched,
                "incomplete_scripts": workload.incomplete,
                "shed_blocks": workload.shed_blocks,
                "byte_exact": byte_exact,
            }
        )
    return rows, all_exact


def run_loadgen(
    tenants=2,
    senders=2,
    seed=7,
    duration_s=0.03,
    block_size=16384,
    message_bytes=5,
    scheme=DEFAULT_SCHEME,
    channels=(13,),
    engine=None,
    jobs=1,
    ring_capacity=64,
    poll_every=8,
    client=None,
    dtype=None,
):
    """Build → drive → verify; returns the report dict.

    With ``client`` the load goes over the wire to a running ``serve``
    process; otherwise an in-process :class:`GatewayCore` (``jobs``
    selects serial vs pooled) is created and torn down here.
    """
    workloads = build_workloads(
        tenants,
        senders,
        seed,
        duration_s=duration_s,
        message_bytes=message_bytes,
        scheme=scheme,
        channels=channels,
        engine=engine,
        dtype=dtype,
    )
    if client is not None:
        elapsed = drive_client(
            client, workloads, block_size=block_size, poll_every=poll_every
        )
    else:
        with GatewayCore(
            engine=engine,
            max_tenants=max(int(tenants), 1),
            ring_capacity=ring_capacity,
            jobs=jobs,
        ) as core:
            elapsed = drive_core(
                core, workloads, block_size=block_size, poll_every=poll_every
            )
    rows, all_exact = verify(workloads)
    total_samples = sum(w.samples.size for w in workloads)
    stream_seconds = sum(w.stream_seconds for w in workloads)
    return {
        "tenants": rows,
        "ok": all_exact,
        "elapsed_s": elapsed,
        "total_samples": int(total_samples),
        "stream_seconds": stream_seconds,
        "aggregate_x_realtime": (
            stream_seconds / elapsed if elapsed > 0 else float("inf")
        ),
        "seed": int(seed),
        "jobs": int(jobs) if client is None else None,
    }


__all__ = [
    "TenantWorkload",
    "build_workloads",
    "drive_core",
    "drive_client",
    "verify",
    "run_loadgen",
    "DEFAULT_SCHEME",
]
