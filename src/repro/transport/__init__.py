"""Reliable message transport over the SymBee link.

The paper's pipeline ends at frames; this package (an extension beyond
the paper) makes SymBee usable as a *messaging* substrate: arbitrary
byte messages are segmented into sequence-numbered fragments
(:mod:`~repro.transport.segmentation`, :mod:`~repro.transport.pdu`),
delivered under selective-repeat ARQ (:mod:`~repro.transport.arq`) with
a FreeBee-style WiFi->ZigBee beacon side channel carrying the ACKs
(:mod:`~repro.transport.ackchannel`), while an AdaComm-style policy
adapts FEC scheme and fragment size to the channel the decoder's vote
margins reveal (:mod:`~repro.transport.policy`).  Channel dynamics for
experiments come from :mod:`~repro.transport.faults`.
"""

from repro.transport.ackchannel import ACK_WINDOW, AckChannel, AckRecord
from repro.transport.arq import ArqSender
from repro.transport.channel import (
    RxObservation,
    TransportChannel,
    frame_airtime_seconds,
)
from repro.transport.faults import (
    AckBlackout,
    FaultProfile,
    GilbertElliott,
    InterferenceBursts,
    PROFILES,
    SnrRamp,
    make_profile,
)
from repro.transport.multisession import MultiSenderResult, MultiSenderTransport
from repro.transport.pdu import (
    Fragment,
    MAX_FRAGMENTS,
    MAX_MSG_ID,
    NOMINAL_PAYLOAD_BITS,
    SCHEME_CONV,
    SCHEME_HAMMING,
    SCHEME_NAMES,
    SCHEME_NONE,
    decode_fragment,
    encode_fragment,
    feasible_schemes,
    payload_capacity,
    scheme_id,
)
from repro.transport.policy import (
    TransportDecision,
    TransportPolicy,
    dequantize_quality,
    quantize_quality,
)
from repro.transport.receiver import TransportReceiver
from repro.transport.segmentation import Reassembler, segment_message
from repro.transport.session import (
    AckAttempt,
    TransportResult,
    TransportSession,
    TxAttempt,
)
from repro.transport.streamrx import CompletedMessage, StreamReassembler

__all__ = [
    "ACK_WINDOW",
    "AckAttempt",
    "AckBlackout",
    "AckChannel",
    "AckRecord",
    "ArqSender",
    "CompletedMessage",
    "FaultProfile",
    "Fragment",
    "GilbertElliott",
    "InterferenceBursts",
    "MAX_FRAGMENTS",
    "MAX_MSG_ID",
    "MultiSenderResult",
    "MultiSenderTransport",
    "NOMINAL_PAYLOAD_BITS",
    "PROFILES",
    "Reassembler",
    "RxObservation",
    "SCHEME_CONV",
    "SCHEME_HAMMING",
    "SCHEME_NAMES",
    "SCHEME_NONE",
    "SnrRamp",
    "StreamReassembler",
    "TransportChannel",
    "TransportDecision",
    "TransportPolicy",
    "TransportReceiver",
    "TransportResult",
    "TransportSession",
    "TxAttempt",
    "decode_fragment",
    "dequantize_quality",
    "encode_fragment",
    "feasible_schemes",
    "frame_airtime_seconds",
    "make_profile",
    "payload_capacity",
    "quantize_quality",
    "scheme_id",
    "segment_message",
]
