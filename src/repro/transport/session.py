"""Reliable message delivery over the SymBee link: the transport session.

One :class:`TransportSession` owns a fault-aware PHY harness
(:class:`repro.transport.channel.TransportChannel`), a FreeBee-style ACK
side channel, a selective-repeat ARQ machine and an adaptation policy,
and advances them in **virtual time**: data frames occupy their true
802.15.4 air time, ACK beacon trains their true FreeBee duration, and
retransmit timers fire on the same clock.  No wall-clock sleeping — a
multi-second link exchange simulates in however long its PHY frames take
to synthesize.

Determinism is the load-bearing property.  Every stochastic draw comes
from a ``SeedSequence`` child keyed by *what* the draw is for — the
fault profile's dynamics, transmission (fragment, attempt), ACK index —
never by *when* it happens to be made, so a given seed reproduces the
exact retransmission schedule, and independent sessions can run on
worker processes (``repro.runtime``) with results identical to serial
execution.
"""

import heapq
from dataclasses import dataclass

from numpy.random import SeedSequence, default_rng

from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.transport.ackchannel import ACK_WINDOW, AckChannel
from repro.transport.arq import ArqSender
from repro.transport.channel import TransportChannel, frame_airtime_seconds
from repro.transport.faults import FaultProfile
from repro.transport.pdu import (
    MAX_MSG_ID,
    NOMINAL_PAYLOAD_BITS,
    SCHEME_NAMES,
    encode_fragment,
    feasible_schemes,
    scheme_id,
)
from repro.transport.policy import TransportPolicy
from repro.transport.receiver import TransportReceiver
from repro.transport.segmentation import segment_message

#: RX/TX turnaround between consecutive frames (12 symbols at 62.5 ksym/s,
#: the 802.15.4 aTurnaroundTime).
TURNAROUND_S = 192e-6

_M_FRAGMENTS = REGISTRY.counter("transport.fragments.sent")
_M_FRAG_DELIVERED = REGISTRY.counter("transport.fragments.delivered")
_M_RETRANSMITS = REGISTRY.counter("transport.retransmits")
_M_FEC_SWITCHES = REGISTRY.counter("transport.fec_switches")
_M_MESSAGES = REGISTRY.counter("transport.messages")
_M_MSG_DELIVERED = REGISTRY.counter("transport.messages.delivered")
_M_MSG_FAILED = REGISTRY.counter("transport.messages.failed")
_M_ACKS_SENT = REGISTRY.counter("transport.acks.sent")
_M_ACKS_DELIVERED = REGISTRY.counter("transport.acks.delivered")
_M_ACKS_LOST = REGISTRY.counter("transport.acks.lost")
_M_RTT = REGISTRY.histogram(
    "transport.rtt_s", edges=(0.1, 0.2, 0.4, 0.8, 1.6, 3.2)
)
_M_ATTEMPTS = REGISTRY.histogram(
    "transport.attempts", edges=(1, 2, 3, 4, 6, 8, 12)
)
_M_GOODPUT = REGISTRY.gauge("transport.goodput_bps")
_M_IN_FLIGHT = REGISTRY.gauge("transport.window_in_flight")
_M_FEC_SCHEME = REGISTRY.gauge("transport.fec_scheme")
_M_LINK_QUALITY = REGISTRY.gauge("transport.link_quality")
_M_EST_BER = REGISTRY.gauge("transport.estimated_ber")


@dataclass(frozen=True)
class TxAttempt:
    """One data-frame transmission in the session schedule."""

    time_s: float
    frag_index: int
    attempt: int
    scheme: int
    delivered: bool      # PHY preamble captured, stream complete
    accepted: bool       # passed the transport's inner checksum


class AckAirtime:
    """Occupancy of the WiFi AP's beacon schedule.

    One AP can only play one ACK beacon train at a time; multi-sender
    deployments share a single instance across endpoints so their ACKs
    serialize like the data frames do.
    """

    def __init__(self):
        self.until_s = float("-inf")


@dataclass(frozen=True)
class AckAttempt:
    """One ACK beacon train in the session schedule."""

    start_s: float
    arrival_s: float
    ok: bool
    base: "int | None"
    quality: "int | None"


@dataclass(frozen=True)
class TransportResult:
    """Outcome of one message exchange (picklable for the MC runtime)."""

    message_bytes: int
    delivered: bool
    byte_exact: bool
    elapsed_s: float
    fragment_bits: int
    frag_count: int
    n_tx: int
    retransmits: int
    fec_switches: int
    schedule: tuple          # TxAttempt per transmission, in time order
    acks: tuple              # AckAttempt per ACK train
    scheme_counts: dict      # scheme name -> transmissions

    @property
    def goodput_bps(self):
        if not self.delivered or self.elapsed_s <= 0:
            return 0.0
        return 8.0 * self.message_bytes / self.elapsed_s


def _spawned_rng(root, *key):
    """Generator for a stable purpose-keyed child of the root seed."""
    return default_rng(
        SeedSequence(entropy=root.entropy, spawn_key=root.spawn_key + tuple(key))
    )


class _Endpoint:
    """Sender+receiver pair working through one message.

    Holds everything but the clock; the single-sender session and the
    multi-sender arbiter both drive this object, which is what makes
    their ARQ behavior identical by construction.
    """

    _KEY_PROFILE = 1
    _KEY_TX = 2
    _KEY_ACK = 3

    def __init__(
        self,
        root,
        channel,
        ack_channel,
        policy,
        fixed_scheme,
        message,
        msg_id,
        fragment_bits,
        window,
        rto_s,
        max_attempts,
        escalate_after,
        ack_airtime=None,
    ):
        self.root = root
        self.channel = channel
        self.ack_channel = ack_channel
        self.policy = policy
        self.fixed_scheme = fixed_scheme
        self.message = bytes(message)
        self.msg_id = int(msg_id)
        self.fragment_bits = int(fragment_bits)
        self.escalate_after = int(escalate_after)
        self.fragments = segment_message(self.message, self.msg_id, self.fragment_bits)
        self.feasible = feasible_schemes(self.fragment_bits)
        self.arq = ArqSender(
            len(self.fragments),
            window=window,
            rto_s=rto_s,
            max_attempts=max_attempts,
        )
        self.receiver = TransportReceiver()
        self._profile_rng = _spawned_rng(root, self._KEY_PROFILE)
        self._ack_queue = []       # (arrival_s, AckDelivery) min-heap
        self._ack_seq = 0
        self._ack_airtime = ack_airtime if ack_airtime is not None else AckAirtime()
        self._ack_dirty = False
        self._last_scheme = None
        self.schedule = []
        self.acks = []
        self.fec_switches = 0
        self.scheme_counts = {}

    # -- feedback path -------------------------------------------------------

    def pump_acks(self, now_s):
        """Apply every ACK whose beacon train has finished by ``now_s``."""
        while self._ack_queue and self._ack_queue[0][0] <= now_s:
            _, _, delivery = heapq.heappop(self._ack_queue)
            if delivery.record is None:
                if REGISTRY.enabled:
                    _M_ACKS_LOST.inc()
                continue
            if REGISTRY.enabled:
                _M_ACKS_DELIVERED.inc()
            self.policy.on_quality(delivery.record.quality)
            newly = self.arq.on_ack(delivery.record, self.msg_id)
            if REGISTRY.enabled:
                for k in newly:
                    if self.arq.last_tx_s[k] is not None:
                        _M_RTT.observe(delivery.arrival_s - self.arq.last_tx_s[k])
                    _M_ATTEMPTS.observe(self.arq.attempts[k])
                _M_LINK_QUALITY.set(delivery.record.quality)
                _M_EST_BER.set(self.policy.estimated_ber)
                _M_IN_FLIGHT.set(self.arq.in_flight())

    def maybe_send_ack(self, now_s):
        """Receiver pushes its current state when the side channel frees up.

        Receptions that land while a beacon train is still on the air
        mark the state dirty; the next call after the channel frees
        flushes them, so the sender is never left waiting on a state
        change that happened mid-train.
        """
        if (
            not self._ack_dirty
            or not self.receiver.started
            or now_s < self._ack_airtime.until_s
        ):
            return
        self._ack_dirty = False
        record = self.receiver.ack_record()
        rng = _spawned_rng(self.root, self._KEY_ACK, self._ack_seq)
        self._ack_seq += 1
        delivery = self.ack_channel.send(record, now_s, rng)
        self._ack_airtime.until_s = delivery.arrival_s
        heapq.heappush(
            self._ack_queue, (delivery.arrival_s, self._ack_seq, delivery)
        )
        ok = delivery.record is not None
        self.acks.append(
            AckAttempt(
                start_s=now_s,
                arrival_s=delivery.arrival_s,
                ok=ok,
                base=record.base,
                quality=record.quality,
            )
        )
        if REGISTRY.enabled:
            _M_ACKS_SENT.inc()

    # -- data path -----------------------------------------------------------

    def _choose_scheme(self, attempt):
        if self.fixed_scheme is not None:
            return self.fixed_scheme
        if attempt > self.escalate_after:
            return max(self.feasible)
        return self.policy.decide_scheme(self.feasible, self.fragment_bits).scheme

    def tx_ready(self, now_s):
        return self.arq.next_tx(now_s) is not None

    def transmit(self, now_s):
        """Send the most urgent eligible fragment; returns its air time."""
        k = self.arq.next_tx(now_s)
        if k is None:
            raise RuntimeError("transmit called with no eligible fragment")
        attempt = self.arq.attempts[k] + 1
        scheme = self._choose_scheme(attempt)
        if self._last_scheme is not None and scheme != self._last_scheme:
            self.fec_switches += 1
            if REGISTRY.enabled:
                _M_FEC_SWITCHES.inc()
        self._last_scheme = scheme
        name = SCHEME_NAMES[scheme]
        self.scheme_counts[name] = self.scheme_counts.get(name, 0) + 1

        data_bits, frame_type, sequence = encode_fragment(self.fragments[k], scheme)
        rng = _spawned_rng(self.root, self._KEY_TX, k, attempt)
        with TRACER.span(
            "transport.tx", frag=k, attempt=attempt, scheme=name
        ):
            observation = self.channel.transmit(
                data_bits, frame_type, sequence, now_s, rng, self._profile_rng
            )
        airtime_s = frame_airtime_seconds(len(data_bits))
        self.arq.record_tx(k, now_s, airtime_s)

        fragment = self.receiver.on_observation(observation)
        accepted = fragment is not None
        if observation.delivered:
            # Even a duplicate warrants a fresh ACK: receiving one means
            # the previous ACK very likely died on the side channel.
            self._ack_dirty = True
        self.schedule.append(
            TxAttempt(
                time_s=now_s,
                frag_index=k,
                attempt=attempt,
                scheme=scheme,
                delivered=observation.delivered,
                accepted=accepted,
            )
        )
        if REGISTRY.enabled:
            _M_FRAGMENTS.inc()
            if attempt > 1:
                _M_RETRANSMITS.inc()
            if accepted:
                _M_FRAG_DELIVERED.inc()
            _M_FEC_SCHEME.set(scheme)
            _M_IN_FLIGHT.set(self.arq.in_flight())
        end_s = now_s + airtime_s
        self.maybe_send_ack(end_s)
        return airtime_s

    # -- scheduling ----------------------------------------------------------

    def next_event(self, now_s):
        """Earliest future instant at which this endpoint can make progress."""
        times = [t for t, _, _ in self._ack_queue[:1]]
        wakeup = self.arq.next_wakeup()
        if wakeup is not None and wakeup > now_s:
            times.append(wakeup)
        if (
            self._ack_dirty
            and self.receiver.started
            and self._ack_airtime.until_s > now_s
        ):
            times.append(self._ack_airtime.until_s)
        return min(times) if times else None

    @property
    def done(self):
        return self.arq.done

    @property
    def failed(self):
        """Out of budget with no feedback left that could still save it."""
        return (
            not self.arq.done
            and self.arq.exhausted
            and not self._ack_queue
            and self.arq.next_tx(float("inf")) is None
        )

    @property
    def active(self):
        return not self.done and not self.failed

    def result(self, elapsed_s):
        retransmits = sum(1 for tx in self.schedule if tx.attempt > 1)
        delivered = self.arq.done
        received = self.receiver.message()
        return TransportResult(
            message_bytes=len(self.message),
            delivered=delivered,
            byte_exact=received == self.message,
            elapsed_s=float(elapsed_s),
            fragment_bits=self.fragment_bits,
            frag_count=len(self.fragments),
            n_tx=len(self.schedule),
            retransmits=retransmits,
            fec_switches=self.fec_switches,
            schedule=tuple(self.schedule),
            acks=tuple(self.acks),
            scheme_counts=dict(self.scheme_counts),
        )


class TransportSession:
    """Single-sender reliable transport over a faulted SymBee link."""

    def __init__(
        self,
        snr_db=6.0,
        fault_profile=None,
        seed=0,
        fec="adaptive",
        window=ACK_WINDOW,
        rto_s=0.35,
        max_attempts=12,
        escalate_after=2,
        zigbee_channel=13,
        wifi_channel=1,
        **link_kwargs,
    ):
        self.root = (
            seed if isinstance(seed, SeedSequence) else SeedSequence(seed)
        )
        profile = fault_profile if fault_profile is not None else FaultProfile()
        self.profile = profile
        self.channel = TransportChannel(
            snr_db=snr_db,
            fault_profile=profile,
            zigbee_channel=zigbee_channel,
            wifi_channel=wifi_channel,
            **link_kwargs,
        )
        impairments = profile.ack_impairments()
        self.ack_channel = AckChannel(
            loss_prob=impairments.loss_prob,
            jitter_sigma_s=impairments.jitter_sigma_s,
            blackouts=impairments.blackouts,
        )
        if fec == "adaptive":
            self.fixed_scheme = None
        else:
            self.fixed_scheme = scheme_id(fec) if isinstance(fec, str) else int(fec)
        self.policy = TransportPolicy()
        self.window = int(window)
        self.rto_s = float(rto_s)
        self.max_attempts = int(max_attempts)
        self.escalate_after = int(escalate_after)
        self._msg_seq = 0
        self._clock_s = 0.0

    def _fragment_bits(self):
        if self.fixed_scheme is not None:
            return NOMINAL_PAYLOAD_BITS[self.fixed_scheme]
        return self.policy.decide_fragmentation().fragment_bits

    def send(self, message):
        """Deliver ``message`` (bytes) reliably; a :class:`TransportResult`.

        Repeated calls share the session clock, channel tracker and
        policy state — a long-lived sender whose adaptation carries over
        from message to message.
        """
        msg_id = self._msg_seq % MAX_MSG_ID
        endpoint = _Endpoint(
            root=SeedSequence(
                entropy=self.root.entropy,
                spawn_key=self.root.spawn_key + (self._msg_seq,),
            ),
            channel=self.channel,
            ack_channel=self.ack_channel,
            policy=self.policy,
            fixed_scheme=self.fixed_scheme,
            message=message,
            msg_id=msg_id,
            fragment_bits=self._fragment_bits(),
            window=self.window,
            rto_s=self.rto_s,
            max_attempts=self.max_attempts,
            escalate_after=self.escalate_after,
        )
        self._msg_seq += 1
        if REGISTRY.enabled:
            _M_MESSAGES.inc()

        start_s = self._clock_s
        now_s = start_s
        with TRACER.span("transport.message", msg_id=msg_id, bytes=len(message)):
            while True:
                endpoint.pump_acks(now_s)
                endpoint.maybe_send_ack(now_s)
                if endpoint.done or endpoint.failed:
                    break
                if endpoint.tx_ready(now_s):
                    airtime_s = endpoint.transmit(now_s)
                    now_s += airtime_s + TURNAROUND_S
                    continue
                upcoming = endpoint.next_event(now_s)
                if upcoming is None:
                    break  # out of budget and out of feedback
                now_s = max(now_s, upcoming)

        self._clock_s = now_s
        result = endpoint.result(now_s - start_s)
        if REGISTRY.enabled:
            if result.delivered:
                _M_MSG_DELIVERED.inc()
                _M_GOODPUT.set(result.goodput_bps)
            else:
                _M_MSG_FAILED.inc()
        return result
