"""Channel-dynamics fault injection for transport experiments.

A fault profile answers one question per data-frame transmission: *what
is the channel doing right now?* — expressed as a :class:`ChannelState`
(extra path loss in dB plus an optional WiFi interference model), and
optionally a set of ACK-side impairments.  Profiles are deterministic
functions of (time, their own RNG stream): the transport session hands
each profile a dedicated generator spawned from the session seed, so the
same seed replays the same bursts regardless of how the data path's own
randomness unfolds.

Included dynamics, mirroring the channel conditions the SymBee and
AdaComm papers evaluate under:

* ``GilbertElliott`` — the classic two-state burst model: a good state
  with the nominal channel and a bad state adding loss (deep fade /
  shadowing), with geometric sojourn times.
* ``InterferenceBursts`` — scripted WiFi interferer activity windows
  reusing the OFDM burst machinery from the reverse-CTI extension
  (:class:`repro.channel.interference.WifiInterferenceModel`).
* ``SnrRamp`` — piecewise-linear SNR trajectory over time (mobility or
  a slow fade), the scenario that exercises FEC adaptation.
* ``AckBlackout`` — data path untouched, but the WiFi->ZigBee beacon
  side channel goes silent in scripted windows, starving the ARQ of
  feedback.

``PROFILES`` maps CLI-friendly names to zero-argument factories.
"""

from dataclasses import dataclass, field

from repro.channel.interference import WifiInterferenceModel


@dataclass(frozen=True)
class ChannelState:
    """Channel condition applied to one data-frame transmission."""

    extra_loss_db: float = 0.0
    interference: "WifiInterferenceModel | None" = None


@dataclass(frozen=True)
class AckImpairments:
    """Side-channel condition the profile imposes on the ACK path."""

    loss_prob: float = 0.0
    jitter_sigma_s: float = 0.0
    blackouts: tuple = ()


class FaultProfile:
    """Base profile: a clean, stationary channel."""

    name = "none"

    def state(self, time_s, rng):
        """Channel state for a transmission starting at ``time_s``.

        Called once per data transmission in nondecreasing time order;
        stateful profiles advance their internal dynamics here using the
        profile's dedicated ``rng``.
        """
        return ChannelState()

    def ack_impairments(self):
        return AckImpairments()

    def describe(self):
        return self.name


class GilbertElliott(FaultProfile):
    """Two-state Markov burst channel (Gilbert-Elliott).

    State transitions are evaluated in continuous time: sojourns are
    exponential with the given mean durations, advanced lazily to each
    queried transmission time.  The bad state attenuates the link by
    ``bad_extra_loss_db`` — enough, at the default operating points, to
    push the frame loss rate from "occasionally" to "almost always",
    which is what makes the ARQ's retransmit budget observable.
    """

    name = "burst"

    def __init__(self, mean_good_s=0.25, mean_bad_s=0.08, bad_extra_loss_db=6.0):
        if mean_good_s <= 0 or mean_bad_s <= 0:
            raise ValueError("sojourn means must be positive")
        self.mean_good_s = float(mean_good_s)
        self.mean_bad_s = float(mean_bad_s)
        self.bad_extra_loss_db = float(bad_extra_loss_db)
        self._bad = False
        self._next_flip_s = None

    def state(self, time_s, rng):
        if self._next_flip_s is None:
            self._next_flip_s = float(rng.exponential(self.mean_good_s))
        while time_s >= self._next_flip_s:
            self._bad = not self._bad
            mean = self.mean_bad_s if self._bad else self.mean_good_s
            self._next_flip_s += float(rng.exponential(mean))
        if self._bad:
            return ChannelState(extra_loss_db=self.bad_extra_loss_db)
        return ChannelState()

    def describe(self):
        return (
            f"{self.name}: Gilbert-Elliott, mean good {self.mean_good_s}s / "
            f"bad {self.mean_bad_s}s at +{self.bad_extra_loss_db} dB loss"
        )


class InterferenceBursts(FaultProfile):
    """Scripted WiFi interferer windows.

    During each ``(start_s, end_s)`` window, transmissions see an OFDM
    interferer at ``sir_db`` with the given burst duty cycle — the same
    interference machinery the reverse-CTI experiment drives, here used
    as a *fault* rather than a signal.
    """

    name = "interference"

    def __init__(self, windows=((0.2, 0.6), (1.0, 1.4)), sir_db=2.0, duty=0.6):
        self.windows = tuple((float(a), float(b)) for a, b in windows)
        for a, b in self.windows:
            if b <= a:
                raise ValueError("interference windows must have end > start")
        self.sir_db = float(sir_db)
        self.duty = float(duty)

    def state(self, time_s, rng):
        if any(a <= time_s < b for a, b in self.windows):
            model = WifiInterferenceModel(
                duty_cycle=self.duty,
                mean_sir_db=self.sir_db,
                sir_sigma_db=0.0,
            )
            return ChannelState(interference=model)
        return ChannelState()

    def describe(self):
        spans = ", ".join(f"{a:g}-{b:g}s" for a, b in self.windows)
        return f"{self.name}: WiFi bursts at SIR {self.sir_db} dB in [{spans}]"


class SnrRamp(FaultProfile):
    """Piecewise-linear extra-loss trajectory.

    ``points`` is a sequence of ``(time_s, extra_loss_db)`` knots; the
    loss is linearly interpolated between them and held flat outside.
    The default walks the link from clean down into the waterfall and
    back — the trajectory the adaptation test rides to force FEC
    switches in both directions.
    """

    name = "snr-ramp"

    def __init__(self, points=((0.0, 0.0), (1.0, 4.0), (2.0, 4.0), (3.0, 0.0))):
        self.points = tuple((float(t), float(v)) for t, v in points)
        if len(self.points) < 2:
            raise ValueError("need at least two trajectory points")
        if any(b[0] <= a[0] for a, b in zip(self.points, self.points[1:])):
            raise ValueError("trajectory times must be strictly increasing")

    def loss_db(self, time_s):
        pts = self.points
        if time_s <= pts[0][0]:
            return pts[0][1]
        if time_s >= pts[-1][0]:
            return pts[-1][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t0 <= time_s <= t1:
                return v0 + (v1 - v0) * (time_s - t0) / (t1 - t0)
        return pts[-1][1]

    def state(self, time_s, rng):
        return ChannelState(extra_loss_db=self.loss_db(time_s))

    def describe(self):
        return f"{self.name}: loss trajectory {self.points}"


class AckBlackout(FaultProfile):
    """Clean data channel, but the ACK side channel goes dark on schedule."""

    name = "ack-blackout"

    def __init__(self, blackouts=((0.3, 0.9),), loss_prob=0.02, jitter_sigma_s=5e-5):
        self.blackouts = tuple((float(a), float(b)) for a, b in blackouts)
        self.loss_prob = float(loss_prob)
        self.jitter_sigma_s = float(jitter_sigma_s)

    def ack_impairments(self):
        return AckImpairments(
            loss_prob=self.loss_prob,
            jitter_sigma_s=self.jitter_sigma_s,
            blackouts=self.blackouts,
        )

    def describe(self):
        spans = ", ".join(f"{a:g}-{b:g}s" for a, b in self.blackouts)
        return f"{self.name}: beacon channel dark in [{spans}]"


#: CLI-facing registry: name -> zero-argument profile factory.
PROFILES = {
    "none": FaultProfile,
    "burst": GilbertElliott,
    "interference": InterferenceBursts,
    "snr-ramp": SnrRamp,
    "ack-blackout": AckBlackout,
}


def make_profile(name):
    """Instantiate a registered profile by name (raises on unknown)."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; valid: {', '.join(sorted(PROFILES))}"
        ) from None
    return factory()
