"""Message segmentation and reassembly.

A message is an arbitrary byte string.  Segmentation appends a ``1``
marker bit and zero-pads to a whole number of equal-size fragments, so
every fragment carries exactly ``fragment_bits`` payload bits and the
receiver needs no length field anywhere: reassembly concatenates the
fragments in index order, strips trailing zeros and the marker, and
packs bytes back out.  Uniform fragments are what make the selective
repeat ACK bitmap and the ``offset = index * fragment_bits`` reassembly
rule trivially correct under out-of-order delivery.
"""

import numpy as np

from repro.transport.pdu import MAX_FRAGMENTS, Fragment


def bytes_to_bits(data):
    """MSB-first bit list of a byte string."""
    if len(data) == 0:
        return []
    return list(np.unpackbits(np.frombuffer(bytes(data), dtype=np.uint8)))


def bits_to_bytes(bits):
    """Inverse of :func:`bytes_to_bits`; length must be a multiple of 8."""
    if len(bits) % 8 != 0:
        raise ValueError("bit length must be a multiple of 8")
    if not bits:
        return b""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def segment_message(data, msg_id, fragment_bits):
    """Split ``data`` (bytes) into uniform :class:`Fragment` objects.

    Raises ``ValueError`` when the message needs more than 64 fragments
    at this fragment size — the caller (the sender's policy) must then
    pick a larger fragment size, i.e. a weaker FEC scheme.
    """
    if fragment_bits < 1:
        raise ValueError("fragment_bits must be positive")
    bits = bytes_to_bits(data) + [1]          # unambiguous end marker
    bits += [0] * ((-len(bits)) % fragment_bits)
    count = len(bits) // fragment_bits
    if count > MAX_FRAGMENTS:
        raise ValueError(
            f"{len(data)}-byte message needs {count} fragments of "
            f"{fragment_bits} bits (max {MAX_FRAGMENTS}); use a larger "
            "fragment size"
        )
    return [
        Fragment(
            msg_id=msg_id,
            frag_index=k,
            frag_count=count,
            payload=tuple(bits[k * fragment_bits : (k + 1) * fragment_bits]),
        )
        for k in range(count)
    ]


def unpad_bits(bits):
    """Strip the zero pad and the ``1`` marker; ``None`` if no marker."""
    bits = list(bits)
    while bits and bits[-1] == 0:
        bits.pop()
    if not bits or bits[-1] != 1:
        return None
    return bits[:-1]


class Reassembler:
    """Collects fragments of one message; yields the bytes when complete.

    Duplicates (ARQ retransmissions of already-received fragments) are
    detected and dropped; a fragment disagreeing with an earlier copy of
    the same index is ignored (first write wins — the checksum already
    vouched for the first copy).
    """

    def __init__(self, msg_id, frag_count):
        self.msg_id = int(msg_id)
        self.frag_count = int(frag_count)
        self._fragments = {}
        self.duplicates = 0

    def add(self, fragment):
        """Insert one fragment; True when it was new."""
        if fragment.msg_id != self.msg_id or fragment.frag_count != self.frag_count:
            raise ValueError("fragment belongs to a different message")
        if fragment.frag_index in self._fragments:
            self.duplicates += 1
            return False
        self._fragments[fragment.frag_index] = fragment.payload
        return True

    @property
    def received_indexes(self):
        return frozenset(self._fragments)

    @property
    def complete(self):
        return len(self._fragments) == self.frag_count

    def message(self):
        """The reassembled bytes, or ``None`` while incomplete/corrupt."""
        if not self.complete:
            return None
        bits = []
        for k in range(self.frag_count):
            bits.extend(self._fragments[k])
        bits = unpad_bits(bits)
        if bits is None or len(bits) % 8 != 0:
            return None
        return bits_to_bytes(bits)
