"""WiFi -> ZigBee acknowledgment side channel (FreeBee-style).

SymBee itself is unidirectional — ZigBee payload bits to a WiFi
listener — so the ARQ's feedback path cannot ride SymBee frames.  What a
WiFi AP *can* do without new hardware is transmit ordinary packets on a
schedule, and a ZigBee node can timestamp their energy bursts: exactly
the FreeBee side channel (Kim & He, MobiCom'15) the baselines module
already models.  The ACK channel therefore encodes each ACK record into
beacon-timing symbols via :class:`repro.baselines.freebee.FreeBee` and
plays the burst schedule through an impairment model: per-beacon loss,
Gaussian timing jitter (energy-detection uncertainty at the ZigBee
node), and scripted blackout windows (the `ack-blackout` fault profile).

An ACK record is 30 bits — ``msg_id(4) | base(6) | bitmap(8) |
quality(4) | crc8(8)`` — a selective-repeat cumulative base plus
received-bitmap for the 8-fragment window, and a quantized link-quality
observation (AdaComm-style decoder soft info fed back to the sender's
rate adaptation).  At 2 bits per beacon the record costs 15 beacons;
with the default 6 ms beacon interval an ACK takes ~90 ms of air time,
two orders of magnitude slower than a data frame — which is what makes
the sender's pipelined window and retransmit timers earn their keep.
"""

from dataclasses import dataclass

from repro.baselines.freebee import FreeBee
from repro.transport.pdu import _bits_to_int, _int_to_bits, _pack_bits
from repro.zigbee.crc import crc16_itut

#: Selective-repeat window size; the ACK bitmap covers exactly this many
#: fragments starting at the record's cumulative base.
ACK_WINDOW = 8

_MSG_ID_BITS = 4
_BASE_BITS = 6
_QUALITY_BITS = 4
_CRC_BITS = 8

ACK_BITS = _MSG_ID_BITS + _BASE_BITS + ACK_WINDOW + _QUALITY_BITS + _CRC_BITS


@dataclass(frozen=True)
class AckRecord:
    """One acknowledgment: cumulative base + window bitmap + quality."""

    msg_id: int
    base: int                 # lowest fragment index not yet received
    bitmap: tuple             # received flags for base .. base+ACK_WINDOW-1
    quality: int              # quantized receiver channel estimate (4 bits)

    def __post_init__(self):
        if len(self.bitmap) != ACK_WINDOW:
            raise ValueError(f"bitmap must cover {ACK_WINDOW} fragments")
        if not 0 <= self.quality < (1 << _QUALITY_BITS):
            raise ValueError("quality must fit 4 bits")

    def to_bits(self):
        body = (
            _int_to_bits(self.msg_id, _MSG_ID_BITS)
            + _int_to_bits(self.base, _BASE_BITS)
            + [int(b) for b in self.bitmap]
            + _int_to_bits(self.quality, _QUALITY_BITS)
        )
        crc = crc16_itut(_pack_bits(body)) & 0xFF
        return body + _int_to_bits(crc, _CRC_BITS)

    @classmethod
    def from_bits(cls, bits):
        """Parse + verify; ``None`` on length or checksum mismatch."""
        bits = [int(b) for b in bits]
        if len(bits) != ACK_BITS:
            return None
        body, crc_bits = bits[:-_CRC_BITS], bits[-_CRC_BITS:]
        if crc16_itut(_pack_bits(body)) & 0xFF != _bits_to_int(crc_bits):
            return None
        base_end = _MSG_ID_BITS + _BASE_BITS
        return cls(
            msg_id=_bits_to_int(body[:_MSG_ID_BITS]),
            base=_bits_to_int(body[_MSG_ID_BITS:base_end]),
            bitmap=tuple(body[base_end : base_end + ACK_WINDOW]),
            quality=_bits_to_int(body[base_end + ACK_WINDOW :]),
        )


@dataclass(frozen=True)
class AckDelivery:
    """Outcome of one ACK transmission attempt."""

    record: "AckRecord | None"   # None when the side channel mangled it
    start_s: float
    arrival_s: float             # when the sender could act on it
    beacons_sent: int
    beacons_lost: int


class AckChannel:
    """FreeBee beacon-timing channel with loss, jitter and blackouts."""

    def __init__(
        self,
        beacon_interval_s=0.006,
        shift_quantum_s=0.5e-3,
        loss_prob=0.0,
        jitter_sigma_s=0.0,
        blackouts=(),
    ):
        self.freebee = FreeBee(
            beacon_interval_s=beacon_interval_s,
            shift_quantum_s=shift_quantum_s,
            bits_per_beacon=2,
        )
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        self.loss_prob = float(loss_prob)
        self.jitter_sigma_s = float(jitter_sigma_s)
        self.blackouts = tuple((float(a), float(b)) for a, b in blackouts)

    def _blacked_out(self, t):
        return any(a <= t < b for a, b in self.blackouts)

    def duration_s(self):
        """Air time of one ACK record's beacon train."""
        n_beacons = ACK_BITS // self.freebee.bits_per_beacon
        return n_beacons * self.freebee.beacon_interval_s

    def send(self, record, start_s, rng):
        """Play one ACK through the side channel.

        The sender can act on the record at ``arrival_s`` (the end of the
        beacon train).  A single lost or quantum-displaced beacon shifts
        or shortens the decoded bit stream, which the record's CRC-8
        rejects — ACKs are all-or-nothing, like real FreeBee symbols.
        """
        events, duration = self.freebee.encode(record.to_bits(), rng)
        survivors = []
        lost = 0
        for event in events:
            absolute = start_s + event.time_s
            if self._blacked_out(absolute) or rng.random() < self.loss_prob:
                lost += 1
                continue
            time_s = event.time_s
            if self.jitter_sigma_s > 0.0:
                time_s = max(0.0, time_s + float(rng.normal(0.0, self.jitter_sigma_s)))
            survivors.append(type(event)(time_s=time_s, duration_s=event.duration_s))
        decoded = AckRecord.from_bits(self.freebee.decode(survivors))
        return AckDelivery(
            record=decoded,
            start_s=start_s,
            arrival_s=start_s + duration,
            beacons_sent=len(events),
            beacons_lost=lost,
        )
