"""Transport receiver: fragment intake, reassembly, ACK generation.

The receiver consumes per-transmission observations (from
:class:`repro.transport.channel.TransportChannel` or, in streaming
deployments, frames surfaced by :mod:`repro.stream`), feeds every
decode's vote margins into a sliding-window channel tracker, validates
fragments through the PDU layer, and produces selective-repeat ACK
records carrying the reassembly state plus the quantized channel
estimate for the sender's adaptation.
"""

from repro.core.adaptive import WindowedLinkQuality
from repro.transport.ackchannel import ACK_WINDOW, AckRecord
from repro.transport.pdu import decode_fragment
from repro.transport.policy import quantize_quality
from repro.transport.segmentation import Reassembler


class TransportReceiver:
    """Receive-side state for a single-sender transport session."""

    def __init__(self, tracker=None):
        self.tracker = tracker if tracker is not None else WindowedLinkQuality()
        self.reassembler = None
        self.frames_seen = 0
        self.fragments_accepted = 0
        self.fragments_rejected = 0

    # -- intake --------------------------------------------------------------

    def on_observation(self, observation):
        """Process one PHY observation; the accepted Fragment or ``None``.

        Every delivered decode updates the channel tracker — corrupted
        frames carry exactly as much soft information as clean ones,
        which is what keeps the quality estimate honest when the link
        degrades and clean frames become rare.
        """
        if observation is None or not observation.delivered:
            return None
        self.frames_seen += 1
        if observation.counts:
            self.tracker.observe(observation.decoded_bits, observation.counts)
        return self.on_frame(
            observation.frame_type, observation.sequence, observation.data_bits
        )

    def on_frame(self, frame_type, sequence, data_bits):
        """Validate one frame's fields through the PDU layer."""
        fragment = decode_fragment(frame_type, sequence, data_bits)
        if fragment is None:
            self.fragments_rejected += 1
            return None
        if (
            self.reassembler is None
            or self.reassembler.msg_id != fragment.msg_id
            or self.reassembler.frag_count != fragment.frag_count
        ):
            self.reassembler = Reassembler(fragment.msg_id, fragment.frag_count)
        self.reassembler.add(fragment)
        self.fragments_accepted += 1
        return fragment

    # -- output --------------------------------------------------------------

    @property
    def started(self):
        """True once at least one fragment of the current message landed."""
        return self.reassembler is not None

    @property
    def complete(self):
        return self.reassembler is not None and self.reassembler.complete

    def message(self):
        """Reassembled bytes of the current message, or ``None``."""
        if self.reassembler is None:
            return None
        return self.reassembler.message()

    def ack_record(self):
        """Current selective-repeat ACK for the in-progress message.

        ``base`` is the lowest missing fragment index, clamped to the
        6-bit field (a fully received 64-fragment message would need
        base 64; base 63 + bitmap bit 0 says the same thing), and the
        bitmap covers the :data:`ACK_WINDOW` fragments above it.
        """
        if self.reassembler is None:
            return None
        received = self.reassembler.received_indexes
        base = 0
        while base in received:
            base += 1
        base = min(base, (1 << 6) - 1)
        bitmap = tuple(
            1 if (base + offset) in received else 0 for offset in range(ACK_WINDOW)
        )
        return AckRecord(
            msg_id=self.reassembler.msg_id,
            base=base,
            bitmap=bitmap,
            quality=quantize_quality(self.tracker.phase_error_probability),
        )
