"""Transport reassembly over the streaming receive engine.

:mod:`repro.stream` surfaces every frame it can delimit from a
continuous capture — including transport fragments, whose frame types
its header gate accepts.  This adapter sits on that output and rebuilds
messages: each :class:`repro.stream.session.StreamFrame` is pushed
through the transport PDU layer (which ignores the outer CRC verdict —
the inner checksum decides), fragments are routed to per-``(sender,
msg_id)`` reassemblers, and completed messages pop out in completion
order.

This is the receive path of a *broadcast* deployment: no ACK channel
and no ARQ, just whatever redundancy the sender's FEC scheme and its own
retransmissions provide.  The session-based transport
(:mod:`repro.transport.session`) is the closed-loop counterpart.
"""

from dataclasses import dataclass

from repro.transport.pdu import decode_fragment
from repro.transport.segmentation import Reassembler


@dataclass(frozen=True)
class CompletedMessage:
    """One fully reassembled message recovered from the stream."""

    msg_id: int
    data: bytes
    frag_count: int
    duplicates: int
    zigbee_channel: "int | None" = None


class StreamReassembler:
    """Rebuilds transport messages from demultiplexed stream frames."""

    def __init__(self):
        self._reassemblers = {}
        self.fragments_accepted = 0
        self.frames_rejected = 0
        self.messages_completed = 0

    def push(self, stream_frame):
        """Feed one stream frame; a :class:`CompletedMessage` or ``None``.

        Frames that are not transport fragments (other frame types, or
        inner-checksum failures) are counted and dropped.
        """
        frame = stream_frame.frame
        if frame is None:
            self.frames_rejected += 1
            return None
        fragment = decode_fragment(
            frame.frame_type, frame.sequence, frame.data_bits
        )
        if fragment is None:
            self.frames_rejected += 1
            return None
        self.fragments_accepted += 1
        channel = getattr(stream_frame, "zigbee_channel", None)
        key = (channel, fragment.msg_id, fragment.frag_count)
        reassembler = self._reassemblers.get(key)
        if reassembler is None:
            reassembler = Reassembler(fragment.msg_id, fragment.frag_count)
            self._reassemblers[key] = reassembler
        reassembler.add(fragment)
        if not reassembler.complete:
            return None
        data = reassembler.message()
        del self._reassemblers[key]
        if data is None:
            return None
        self.messages_completed += 1
        return CompletedMessage(
            msg_id=fragment.msg_id,
            data=data,
            frag_count=fragment.frag_count,
            duplicates=reassembler.duplicates,
            zigbee_channel=channel,
        )

    def push_all(self, stream_frames):
        """Feed a frame iterable; the completed messages, in order."""
        completed = []
        for stream_frame in stream_frames:
            message = self.push(stream_frame)
            if message is not None:
                completed.append(message)
        return completed

    @property
    def pending(self):
        """Number of partially reassembled messages still open."""
        return len(self._reassemblers)
