"""AdaComm-style FEC and fragment-size adaptation.

The receiver tracks channel quality from the decoder's vote margins
(:class:`repro.core.adaptive.WindowedLinkQuality` — soft information the
majority-vote decoder produces for free) and feeds a 4-bit quantized
summary back in every ACK record.  The sender dequantizes it into a BER
estimate and picks, per transmission, the FEC scheme maximizing expected
transport goodput; per message, it also picks the fragment size (which
fixes the strongest scheme the message's fragments can ever use).

The goodput model extends :class:`repro.core.adaptive.AdaptiveFec` from
bare frames to transport framing: a fragment survives only if both its
uncoded implicit header fields (frame type + sequence byte, 12 bits) and
its FEC-protected PDU decode cleanly, and schemes differ in air time, so
the comparison is ``payload_bits * P(success) / airtime`` rather than a
pure rate product.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_STABLE_WINDOW_20MHZ
from repro.core.analytics import ber_from_phase_error
from repro.transport.channel import frame_airtime_seconds
from repro.transport.pdu import (
    NOMINAL_PAYLOAD_BITS,
    PDU_OVERHEAD_BITS,
    SCHEME_CONV,
    SCHEME_HAMMING,
    SCHEME_NONE,
    _coded_bits,
)

#: Uncoded header bits a fragment rides on (frame type + sequence byte);
#: the frame's version/length fields are also uncoded but their
#: corruption is overwhelmingly caught by the same inner checksum, so
#: the dominant uncoded exposure is these 12 bits.
UNCODED_HEADER_BITS = 12

_QUALITY_LEVELS = 16

#: Quantizer range.  The 84-vote majority drives the post-decoder BER
#: through its waterfall as the per-value error rate Pr_eps crosses
#: roughly 0.25..0.45, so the 4 feedback bits are spent there rather
#: than on the flat region below (every Pr_eps under 0.2 means "clean").
_PR_MIN = 0.2
_PR_MAX = 0.5
_PR_STEP = (_PR_MAX - _PR_MIN) / _QUALITY_LEVELS


def quantize_quality(phase_error_probability):
    """Pr_eps -> 4-bit feedback value (uniform over the waterfall)."""
    pr = float(phase_error_probability)
    return min(_QUALITY_LEVELS - 1, max(0, int((pr - _PR_MIN) / _PR_STEP)))


def dequantize_quality(quality):
    """4-bit feedback value -> Pr_eps (bin centre; bin 0 means clean)."""
    if int(quality) == 0:
        return 0.0
    return _PR_MIN + (int(quality) + 0.5) * _PR_STEP


def quality_to_ber(quality, window=SYMBEE_STABLE_WINDOW_20MHZ):
    """BER estimate implied by a quantized feedback value (Eq. 2)."""
    return ber_from_phase_error(dequantize_quality(quality), window=window)


@dataclass(frozen=True)
class TransportDecision:
    """One policy evaluation: chosen scheme plus the evidence."""

    scheme: int
    fragment_bits: int
    estimated_ber: float
    goodputs: dict              # scheme id -> expected payload bits/s
    informed: bool              # False while running on the prior


class TransportPolicy:
    """Goodput-maximizing scheme selection with a robustness-first prior.

    Until the first valid quality feedback arrives the policy assumes
    the worst (the strongest feasible scheme) — the AdaComm stance that
    a cold link must earn the right to run fast, not the other way
    around.
    """

    #: Above this estimated BER the analytic goodput models (notably the
    #: convolutional union bound) are outside their validity region and
    #: every option scores ~0; ranking noise there is meaningless, so
    #: the policy falls back to the strongest feasible scheme.
    PANIC_BER = 0.12

    def __init__(self, window=SYMBEE_STABLE_WINDOW_20MHZ):
        self.window = int(window)
        self._quality = None

    # -- feedback -------------------------------------------------------------

    def on_quality(self, quality):
        """Absorb a 4-bit quality observation from an ACK record."""
        self._quality = int(quality)

    @property
    def informed(self):
        return self._quality is not None

    @property
    def estimated_ber(self):
        """Current BER estimate (worst case while uninformed)."""
        if self._quality is None:
            return 0.5
        return quality_to_ber(self._quality, window=self.window)

    # -- goodput model --------------------------------------------------------

    def _success_probability(self, scheme, payload_bits, ber):
        pdu = PDU_OVERHEAD_BITS + payload_bits
        header_ok = (1.0 - ber) ** UNCODED_HEADER_BITS
        if scheme == SCHEME_NONE:
            return header_ok * (1.0 - ber) ** pdu
        if scheme == SCHEME_HAMMING:
            block_ok = (1.0 - ber) ** 7 + 7 * ber * (1.0 - ber) ** 6
            return header_ok * block_ok ** ((pdu + 3) // 4)
        # K=7 conv: dominant union-bound term (d_free=10, a_dfree=11).
        p = min(max(ber, 0.0), 0.5)
        p_out = min(1.0, 11.0 * (2.0 * np.sqrt(p * (1.0 - p))) ** 10)
        return header_ok * (1.0 - p_out) ** pdu

    def _goodput(self, scheme, payload_bits, ber):
        airtime = frame_airtime_seconds(
            _coded_bits(scheme, PDU_OVERHEAD_BITS + payload_bits)
        )
        return (
            payload_bits * self._success_probability(scheme, payload_bits, ber)
            / airtime
        )

    # -- decisions ------------------------------------------------------------

    def decide_scheme(self, feasible, payload_bits):
        """Best scheme for one transmission of a ``payload_bits`` fragment.

        ``feasible`` is the scheme-id tuple from
        :func:`repro.transport.pdu.feasible_schemes` — the fragment's
        size was fixed at segmentation time, so only schemes that still
        fit it are on the table.
        """
        if not feasible:
            raise ValueError("no feasible scheme for this fragment size")
        ber = self.estimated_ber
        goodputs = {s: self._goodput(s, payload_bits, ber) for s in feasible}
        if not self.informed or ber >= self.PANIC_BER:
            scheme = max(feasible)  # strongest feasible: robustness first
        else:
            scheme = max(goodputs, key=goodputs.get)
        return TransportDecision(
            scheme=scheme,
            fragment_bits=payload_bits,
            estimated_ber=ber,
            goodputs=goodputs,
            informed=self.informed,
        )

    def decide_fragmentation(self):
        """Scheme + fragment size for a *new* message.

        Evaluates each scheme at its own nominal (capacity-filling)
        fragment size; the winner's size becomes the message's uniform
        fragment size, which in turn bounds how far later per-attempt
        decisions can escalate.
        """
        ber = self.estimated_ber
        goodputs = {
            s: self._goodput(s, NOMINAL_PAYLOAD_BITS[s], ber)
            for s in (SCHEME_NONE, SCHEME_HAMMING, SCHEME_CONV)
        }
        if not self.informed or ber >= self.PANIC_BER:
            scheme = SCHEME_CONV
        else:
            scheme = max(goodputs, key=goodputs.get)
        return TransportDecision(
            scheme=scheme,
            fragment_bits=NOMINAL_PAYLOAD_BITS[scheme],
            estimated_ber=ber,
            goodputs=goodputs,
            informed=self.informed,
        )
