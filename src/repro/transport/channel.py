"""The transport's view of the PHY: one fragment in, one observation out.

``TransportChannel`` wraps a :class:`repro.core.link.SymBeeLink` pinned
at a base SNR (the repo's ``link_at_snr`` convention) and applies the
session's fault profile per transmission: extra path loss scales the
transmit waveform, interference installs a WiFi burst model for the
duration of that frame.

The receive side is deliberately honest about what a real transport
sees.  It reads the frame type, sequence byte and data region from the
*decoded* bit positions — any of which may be corrupted — and it does
**not** require the outer SymBee CRC to pass: a frame whose errors are
confined to the FEC-coded region is exactly the frame link-layer coding
exists to save, and the outer CRC (computed over raw pre-correction
bits) would veto it.  Integrity is the transport PDU's inner checksum's
job (:mod:`repro.transport.pdu`).
"""

from dataclasses import dataclass

import numpy as np

from repro.core.frame import build_frame_bits, frame_overhead_bits, parse_frame_bits
from repro.core.link import SymBeeLink
from repro.dsp.signal_ops import watts_to_dbm
from repro.transport.faults import FaultProfile
from repro.wifi.front_end import WifiFrontEnd
from repro.zigbee.frame import ppdu_duration_seconds
from repro.zigbee.mac import MAC_OVERHEAD_BYTES

_TYPE_SLICE = slice(4, 8)
_SEQUENCE_SLICE = slice(16, 24)
_DATA_START = 24
_OUTER_CRC_BITS = 16


class _Attenuator:
    """Flat extra path loss applied to the transmit waveform."""

    def __init__(self, loss_db):
        self.loss_db = float(loss_db)

    def apply(self, waveform, rng):
        return waveform * 10.0 ** (-self.loss_db / 20.0)


def frame_airtime_seconds(n_data_bits):
    """Air time of a transport frame carrying ``n_data_bits`` data bits.

    Matches the network simulator's accounting: one ZigBee payload byte
    per SymBee bit (preamble + header + data + CRC) plus the MAC/PHY
    overhead bytes of the carrier packet.
    """
    payload_bytes = 4 + frame_overhead_bits() + int(n_data_bits)
    return ppdu_duration_seconds(payload_bytes + MAC_OVERHEAD_BYTES)


@dataclass(frozen=True)
class RxObservation:
    """What the receiver extracted from one transmission attempt."""

    delivered: bool              # preamble captured and stream complete
    frame_type: "int | None"
    sequence: "int | None"
    data_bits: tuple             # decoded data region (possibly corrupted)
    decoded_bits: tuple          # full decoded frame bits (tracker input)
    counts: tuple                # per-bit vote counts (soft information)
    outer_crc_ok: bool           # diagnostic only; transport ignores it
    snr_db: float
    extra_loss_db: float
    interfered: bool


class TransportChannel:
    """Fault-aware PHY harness for transport sessions."""

    def __init__(
        self,
        snr_db=6.0,
        fault_profile=None,
        zigbee_channel=13,
        wifi_channel=1,
        **link_kwargs,
    ):
        front = WifiFrontEnd(channel=wifi_channel)
        noise_floor_dbm = float(watts_to_dbm(front.noise_power_watts))
        self.snr_db = float(snr_db)
        self.link = SymBeeLink(
            zigbee_channel=zigbee_channel,
            wifi_channel=wifi_channel,
            tx_power_dbm=noise_floor_dbm + self.snr_db,
            **link_kwargs,
        )
        self.profile = fault_profile if fault_profile is not None else FaultProfile()

    def transmit(self, data_bits, frame_type, sequence, time_s, rng, profile_rng):
        """Run one fragment transmission through the faulted PHY.

        ``rng`` drives the PHY noise/interference draw for this attempt;
        ``profile_rng`` is the fault profile's dedicated stream (advanced
        once per call, keeping channel dynamics independent of the data
        path's randomness).
        """
        state = self.profile.state(float(time_s), profile_rng)
        self.link.link_channel = (
            _Attenuator(state.extra_loss_db) if state.extra_loss_db else None
        )
        self.link.interference = state.interference

        frame_bits = build_frame_bits(
            data_bits, sequence=sequence, frame_type=frame_type
        )
        result = self.link.send_bits(frame_bits, rng, mac_sequence=sequence)

        n = len(frame_bits)
        decoded = result.decoded_bits
        if not result.preamble_captured or len(decoded) < n:
            return RxObservation(
                delivered=False,
                frame_type=None,
                sequence=None,
                data_bits=(),
                decoded_bits=tuple(decoded),
                counts=tuple(result.counts),
                outer_crc_ok=False,
                snr_db=result.snr_db,
                extra_loss_db=state.extra_loss_db,
                interfered=state.interference is not None,
            )

        decoded = tuple(decoded[:n])
        frame = parse_frame_bits(decoded)
        bits = np.asarray(decoded)
        return RxObservation(
            delivered=True,
            frame_type=int(_bits_to_int(bits[_TYPE_SLICE])),
            sequence=int(_bits_to_int(bits[_SEQUENCE_SLICE])),
            data_bits=tuple(int(b) for b in decoded[_DATA_START : n - _OUTER_CRC_BITS]),
            decoded_bits=decoded,
            counts=tuple(result.counts[:n]),
            outer_crc_ok=frame is not None and frame.crc_ok,
            snr_db=result.snr_db,
            extra_loss_db=state.extra_loss_db,
            interfered=state.interference is not None,
        )


def _bits_to_int(bits):
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value
