"""Multiple transport senders sharing one ZigBee channel.

Every sender runs the same per-message endpoint the single-sender
session uses (:class:`repro.transport.session._Endpoint` — same ARQ,
same adaptation, same seeding discipline), but their data frames
contend for a single airtime resource and their ACK beacon trains for a
single WiFi AP.  Arbitration is a polite round-robin among the senders
whose ARQ machines have an eligible fragment when the channel frees —
the senders-hear-each-other assumption the convergecast network
simulator also makes — so the model measures queueing and feedback
delay, not collision losses.

Each sender gets an independent fault-profile instance and an
independent seed branch, so per-sender channel dynamics are uncorrelated
unless the caller passes shared profile objects on purpose.
"""

from dataclasses import dataclass

from numpy.random import SeedSequence

from repro.obs.trace import TRACER
from repro.transport.ackchannel import ACK_WINDOW, AckChannel
from repro.transport.channel import TransportChannel
from repro.transport.faults import FaultProfile
from repro.transport.pdu import MAX_MSG_ID, NOMINAL_PAYLOAD_BITS, scheme_id
from repro.transport.policy import TransportPolicy
from repro.transport.session import TURNAROUND_S, AckAirtime, _Endpoint


@dataclass(frozen=True)
class MultiSenderResult:
    """Outcome of one shared-channel run."""

    results: tuple           # per-sender TransportResult, sender order
    elapsed_s: float
    grants: tuple            # per-sender data-frame grants

    @property
    def all_delivered(self):
        return all(r.delivered and r.byte_exact for r in self.results)

    @property
    def aggregate_goodput_bps(self):
        if self.elapsed_s <= 0:
            return 0.0
        delivered = sum(
            8 * r.message_bytes for r in self.results if r.delivered
        )
        return delivered / self.elapsed_s


class MultiSenderTransport:
    """Shared-airtime arbiter over N transport endpoints."""

    def __init__(
        self,
        messages,
        snr_db=6.0,
        fault_profiles=None,
        seed=0,
        fec="adaptive",
        window=ACK_WINDOW,
        rto_s=0.35,
        max_attempts=12,
        escalate_after=2,
        **link_kwargs,
    ):
        messages = [bytes(m) for m in messages]
        if not messages:
            raise ValueError("need at least one sender message")
        if fault_profiles is None:
            fault_profiles = [FaultProfile() for _ in messages]
        if len(fault_profiles) != len(messages):
            raise ValueError("one fault profile per sender (or None)")
        root = seed if isinstance(seed, SeedSequence) else SeedSequence(seed)
        fixed = None if fec == "adaptive" else (
            scheme_id(fec) if isinstance(fec, str) else int(fec)
        )
        ack_airtime = AckAirtime()
        self.endpoints = []
        for index, (message, profile) in enumerate(zip(messages, fault_profiles)):
            channel = TransportChannel(
                snr_db=snr_db, fault_profile=profile, **link_kwargs
            )
            impairments = profile.ack_impairments()
            ack_channel = AckChannel(
                loss_prob=impairments.loss_prob,
                jitter_sigma_s=impairments.jitter_sigma_s,
                blackouts=impairments.blackouts,
            )
            policy = TransportPolicy()
            fragment_bits = (
                NOMINAL_PAYLOAD_BITS[fixed]
                if fixed is not None
                else policy.decide_fragmentation().fragment_bits
            )
            self.endpoints.append(
                _Endpoint(
                    root=SeedSequence(
                        entropy=root.entropy, spawn_key=root.spawn_key + (index,)
                    ),
                    channel=channel,
                    ack_channel=ack_channel,
                    policy=policy,
                    fixed_scheme=fixed,
                    message=message,
                    msg_id=index % MAX_MSG_ID,
                    fragment_bits=fragment_bits,
                    window=window,
                    rto_s=rto_s,
                    max_attempts=max_attempts,
                    escalate_after=escalate_after,
                    ack_airtime=ack_airtime,
                )
            )
        self._grants = [0] * len(self.endpoints)

    def _pick(self, ready):
        """Fair grant: fewest grants so far, sender index breaking ties."""
        index = min(ready, key=lambda i: (self._grants[i], i))
        self._grants[index] += 1
        return index

    def run(self):
        """Drive every sender to completion (or budget exhaustion)."""
        endpoints = self.endpoints
        now_s = 0.0
        channel_free_s = 0.0
        with TRACER.span("transport.multisender", senders=len(endpoints)):
            while True:
                for endpoint in endpoints:
                    endpoint.pump_acks(now_s)
                    endpoint.maybe_send_ack(now_s)
                if not any(endpoint.active for endpoint in endpoints):
                    break
                ready = [
                    i
                    for i, endpoint in enumerate(endpoints)
                    if endpoint.active and endpoint.tx_ready(now_s)
                ]
                if ready and now_s >= channel_free_s:
                    endpoint = endpoints[self._pick(ready)]
                    airtime_s = endpoint.transmit(now_s)
                    channel_free_s = now_s + airtime_s + TURNAROUND_S
                    now_s = channel_free_s
                    continue
                candidates = [channel_free_s] if ready else []
                for endpoint in endpoints:
                    if not endpoint.active:
                        continue
                    upcoming = endpoint.next_event(now_s)
                    if upcoming is not None:
                        candidates.append(upcoming)
                if not candidates:
                    break
                now_s = max(now_s, min(candidates))
        return MultiSenderResult(
            results=tuple(
                endpoint.result(now_s) for endpoint in self.endpoints
            ),
            elapsed_s=now_s,
            grants=tuple(self._grants),
        )
