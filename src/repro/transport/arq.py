"""Selective-repeat ARQ sender state machine.

Pure control logic, no PHY and no clock of its own: the session (or the
multi-sender arbiter) owns time and asks the machine what to do at a
given instant.  The machine tracks, per fragment: acknowledged or not,
transmission attempts used, and when the retransmit timer next fires.
A fragment may be (re)transmitted when it is inside the send window
(``base .. base + window - 1``), unacknowledged, past its timer, and
still under the attempt budget; the machine always offers the lowest
eligible index, which keeps retransmissions ahead of new data.

Keeping this a standalone object is what lets the single-sender session
and the multi-sender airtime arbiter drive identical ARQ behavior.
"""

from repro.transport.ackchannel import ACK_WINDOW


class ArqSender:
    """Window/timer/budget bookkeeping for one message's fragments."""

    def __init__(self, frag_count, window=ACK_WINDOW, rto_s=0.35, max_attempts=12):
        if frag_count < 1:
            raise ValueError("frag_count must be positive")
        if window < 1:
            raise ValueError("window must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.frag_count = int(frag_count)
        self.window = int(window)
        self.rto_s = float(rto_s)
        self.max_attempts = int(max_attempts)
        self.acked = [False] * self.frag_count
        self.attempts = [0] * self.frag_count
        self.last_tx_s = [None] * self.frag_count
        self._next_due_s = [0.0] * self.frag_count
        self.base = 0

    # -- state ---------------------------------------------------------------

    @property
    def done(self):
        """Every fragment acknowledged."""
        return self.base >= self.frag_count

    @property
    def exhausted(self):
        """Some unacknowledged fragment has burned its whole budget."""
        return any(
            not acked and attempts >= self.max_attempts
            for acked, attempts in zip(self.acked, self.attempts)
        )

    def _window_indexes(self):
        end = min(self.base + self.window, self.frag_count)
        return range(self.base, end)

    def in_flight(self):
        """Window fragments transmitted at least once and still unacked."""
        return sum(
            1
            for k in self._window_indexes()
            if self.attempts[k] > 0 and not self.acked[k]
        )

    # -- sending -------------------------------------------------------------

    def next_tx(self, now_s):
        """Lowest fragment index eligible to transmit at ``now_s``.

        ``None`` when nothing is currently eligible — either all in
        window fragments are acknowledged/waiting on timers, or the
        remaining ones are out of budget (check :attr:`exhausted`).
        """
        for k in self._window_indexes():
            if (
                not self.acked[k]
                and self.attempts[k] < self.max_attempts
                and self._next_due_s[k] <= now_s
            ):
                return k
        return None

    def next_wakeup(self):
        """Earliest future retransmit-timer expiry, or ``None``."""
        due = [
            self._next_due_s[k]
            for k in self._window_indexes()
            if not self.acked[k] and self.attempts[k] < self.max_attempts
        ]
        return min(due) if due else None

    def record_tx(self, frag_index, now_s, airtime_s):
        """Account one transmission and arm its retransmit timer."""
        if self.acked[frag_index]:
            raise ValueError("fragment already acknowledged")
        self.attempts[frag_index] += 1
        self.last_tx_s[frag_index] = float(now_s)
        self._next_due_s[frag_index] = float(now_s) + float(airtime_s) + self.rto_s

    # -- feedback ------------------------------------------------------------

    def on_ack(self, record, msg_id):
        """Apply one ACK record; returns the newly acknowledged indexes.

        The record acknowledges everything below its cumulative ``base``
        plus the bitmap positions above it.  Records for other messages
        (a stale msg_id from the 4-bit wrap) are ignored.
        """
        if record is None or record.msg_id != msg_id:
            return []
        newly = []
        for k in range(min(record.base, self.frag_count)):
            if not self.acked[k]:
                self.acked[k] = True
                newly.append(k)
        for offset, flag in enumerate(record.bitmap):
            k = record.base + offset
            if flag and k < self.frag_count and not self.acked[k]:
                self.acked[k] = True
                newly.append(k)
        while self.base < self.frag_count and self.acked[self.base]:
            self.base += 1
        return newly
