"""Transport PDU: compact fragment header + per-scheme FEC framing.

A SymBee frame carries at most :data:`repro.core.frame.MAX_DATA_BITS`
(72) data bits, so every header bit spent here is goodput lost.  The
transport therefore reuses the SymBee frame's own uncoded fields for two
of its header values — the *fragment index* rides the frame's sequence
byte and the *FEC scheme* rides the frame type
(:func:`repro.core.frame.transport_frame_type`) — and protects both
**implicitly**: the inner checksum is computed over (msg_id, frag_index,
scheme, frag_count, payload) but only the fields the frame does not
already carry are transmitted.  A corrupted sequence byte or frame type
changes the recomputed checksum and the fragment is rejected, without
spending a single payload bit on either field.

On-air layout of the frame's data-bit region::

    scheme_encode( msg_id(4) | frag_count-1(6) | payload(p) | crc12(12) )

where ``crc12`` is the ITU-T CRC-16 truncated to 12 bits, computed over
the packed implicit+explicit header and payload.  The outer SymBee CRC-16
still covers the whole frame, but the transport deliberately does *not*
require it: a frame whose coded region is recoverable by FEC would fail
the outer check (it covers the raw, pre-correction bits), and rejecting
it would make link-layer coding pointless.

Per-scheme payload capacity inside the 72-bit budget (PDU overhead is
22 bits):

======== ============================== ==========
scheme   coded bits for a PDU of b bits capacity
======== ============================== ==========
none     ``b``                          50
hamming  ``7 * ceil(b / 4)``            18
conv     ``2 * (b + 6)``                8
======== ============================== ==========

The convolutional option is deliberately tiny — rate 1/2 plus the 6-bit
Viterbi tail inside a 72-bit frame leaves 8 payload bits — but it is the
scheme that still delivers when the channel is bad enough that nothing
else does, which is exactly when the adaptive policy reaches for it.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.coding import hamming74_decode, hamming74_encode
from repro.core.convolutional import CONSTRAINT_LENGTH, conv_encode, viterbi_decode
from repro.core.frame import MAX_DATA_BITS, transport_frame_type, transport_scheme_id
from repro.zigbee.crc import crc16_itut

#: Explicit PDU overhead: msg_id(4) + frag_count(6) + crc12(12).
PDU_OVERHEAD_BITS = 22

_MSG_ID_BITS = 4
_COUNT_BITS = 6
_CRC_BITS = 12

#: Fragment index budget (rides the frame's 8-bit sequence byte but is
#: checksummed at 6 bits, bounding messages at 64 fragments).
MAX_FRAGMENTS = 1 << _COUNT_BITS
MAX_MSG_ID = 1 << _MSG_ID_BITS

#: Scheme ids in robustness order (0 weakest): the policy escalates
#: rightwards through this tuple when the channel degrades.
SCHEME_NONE = 0
SCHEME_HAMMING = 1
SCHEME_CONV = 2
SCHEME_NAMES = ("none", "hamming", "conv")


def _int_to_bits(value, width):
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def _bits_to_int(bits):
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def _pack_bits(bits):
    """MSB-first packing into bytes, zero-padded to a byte boundary."""
    out = bytearray()
    for start in range(0, len(bits), 8):
        chunk = list(bits[start : start + 8])
        chunk += [0] * (8 - len(chunk))
        out.append(_bits_to_int(chunk))
    return bytes(out)


def scheme_id(name):
    """Scheme id for a scheme name (raises on unknown names)."""
    try:
        return SCHEME_NAMES.index(name)
    except ValueError:
        raise ValueError(
            f"unknown FEC scheme {name!r}; valid: {', '.join(SCHEME_NAMES)}"
        ) from None


def _coded_bits(scheme, pdu_bits):
    """On-air data bits for a PDU of ``pdu_bits`` under ``scheme``."""
    if scheme == SCHEME_NONE:
        return pdu_bits
    if scheme == SCHEME_HAMMING:
        return 7 * ((pdu_bits + 3) // 4)
    return 2 * (pdu_bits + CONSTRAINT_LENGTH - 1)


def payload_capacity(scheme):
    """Largest fragment payload (bits) that fits one frame under ``scheme``."""
    if isinstance(scheme, str):
        scheme = scheme_id(scheme)
    capacity = 0
    while _coded_bits(scheme, PDU_OVERHEAD_BITS + capacity + 1) <= MAX_DATA_BITS:
        capacity += 1
    return capacity


#: Fragment payload the segmenter uses per scheme: the exact per-frame
#: capacity, so the frame budget is never wasted.
NOMINAL_PAYLOAD_BITS = {
    SCHEME_NONE: payload_capacity(SCHEME_NONE),
    SCHEME_HAMMING: payload_capacity(SCHEME_HAMMING),
    SCHEME_CONV: payload_capacity(SCHEME_CONV),
}


def feasible_schemes(payload_bits):
    """Scheme ids able to carry a ``payload_bits`` fragment, weakest first.

    A fragment's raw size is fixed at segmentation time; a retransmission
    may switch FEC only among the schemes whose capacity still fits it.
    """
    return tuple(
        scheme
        for scheme in (SCHEME_NONE, SCHEME_HAMMING, SCHEME_CONV)
        if payload_capacity(scheme) >= payload_bits
    )


@dataclass(frozen=True)
class Fragment:
    """One decoded (or to-be-sent) transport fragment."""

    msg_id: int
    frag_index: int
    frag_count: int
    payload: tuple

    def __post_init__(self):
        if not 0 <= self.msg_id < MAX_MSG_ID:
            raise ValueError("msg_id must fit 4 bits")
        if not 0 <= self.frag_index < MAX_FRAGMENTS:
            raise ValueError("frag_index must fit 6 bits")
        if not 1 <= self.frag_count <= MAX_FRAGMENTS:
            raise ValueError("frag_count must be 1..64")
        if self.frag_index >= self.frag_count:
            raise ValueError("frag_index must be below frag_count")


def _crc12(fragment, scheme):
    """Inner checksum over implicit + explicit fields and payload."""
    covered = (
        _int_to_bits(fragment.msg_id, _MSG_ID_BITS)
        + _int_to_bits(fragment.frag_index, _COUNT_BITS)
        + _int_to_bits(scheme, 2)
        + _int_to_bits(fragment.frag_count - 1, _COUNT_BITS)
        + list(fragment.payload)
    )
    return crc16_itut(_pack_bits(covered)) & 0xFFF


def encode_fragment(fragment, scheme):
    """Encode one fragment under ``scheme``.

    Returns ``(data_bits, frame_type, sequence)`` ready for
    :func:`repro.core.frame.build_frame_bits`.
    """
    if isinstance(scheme, str):
        scheme = scheme_id(scheme)
    payload = [int(b) for b in fragment.payload]
    if any(b not in (0, 1) for b in payload):
        raise ValueError("payload bits must be 0/1")
    if len(payload) > payload_capacity(scheme):
        raise ValueError(
            f"{len(payload)}-bit payload exceeds scheme "
            f"{SCHEME_NAMES[scheme]!r} capacity {payload_capacity(scheme)}"
        )
    pdu = (
        _int_to_bits(fragment.msg_id, _MSG_ID_BITS)
        + _int_to_bits(fragment.frag_count - 1, _COUNT_BITS)
        + payload
        + _int_to_bits(_crc12(fragment, scheme), _CRC_BITS)
    )
    pdu = np.asarray(pdu, dtype=np.int8)
    if scheme == SCHEME_NONE:
        coded = pdu
    elif scheme == SCHEME_HAMMING:
        pad = (-pdu.size) % 4
        if pad:
            pdu = np.concatenate([pdu, np.zeros(pad, dtype=np.int8)])
        coded = hamming74_encode(pdu)
    else:
        coded = conv_encode(pdu)
    return list(coded), transport_frame_type(scheme), fragment.frag_index


def _validate(raw, pdu_len, frag_index, scheme):
    """Check one candidate PDU length; a Fragment on success else None."""
    if pdu_len < PDU_OVERHEAD_BITS:
        return None
    msg_id = _bits_to_int(raw[0:_MSG_ID_BITS])
    count = _bits_to_int(raw[_MSG_ID_BITS : _MSG_ID_BITS + _COUNT_BITS]) + 1
    if frag_index >= count:
        return None
    payload = tuple(int(b) for b in raw[_MSG_ID_BITS + _COUNT_BITS : pdu_len - _CRC_BITS])
    received = _bits_to_int(raw[pdu_len - _CRC_BITS : pdu_len])
    fragment = Fragment(
        msg_id=msg_id, frag_index=frag_index, frag_count=count, payload=payload
    )
    if _crc12(fragment, scheme) != received:
        return None
    return fragment


def decode_fragment(frame_type, sequence, data_bits):
    """Decode a received frame's data region back into a :class:`Fragment`.

    ``None`` when the frame is not a transport fragment or fails the
    inner checksum (which covers the frame type and sequence byte, so
    corruption of either uncoded field is caught here).
    """
    scheme = transport_scheme_id(frame_type)
    if scheme is None:
        return None
    frag_index = int(sequence) & (MAX_FRAGMENTS - 1)
    bits = np.asarray(list(data_bits), dtype=np.int8)
    if bits.size == 0 or bits.size > MAX_DATA_BITS:
        return None
    if scheme == SCHEME_NONE:
        return _validate(bits, bits.size, frag_index, scheme)
    if scheme == SCHEME_HAMMING:
        if bits.size % 7 != 0:
            return None
        raw, _ = hamming74_decode(bits)
        # The encoder zero-padded the PDU to a codeword boundary; the pad
        # length is not transmitted, so try each of the <= 3 possible
        # lengths — the checksum (which trails the true PDU) disambiguates.
        for pad in range(4):
            fragment = _validate(raw, raw.size - pad, frag_index, scheme)
            if fragment is not None:
                return fragment
        return None
    if bits.size % 2 != 0:
        return None
    n_bits = bits.size // 2 - (CONSTRAINT_LENGTH - 1)
    if n_bits < PDU_OVERHEAD_BITS:
        return None
    raw = viterbi_decode(bits, n_bits=n_bits)
    return _validate(raw, raw.size, frag_index, scheme)
