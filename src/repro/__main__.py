"""Command-line interface: reproduce any paper result from the shell.

    python -m repro list                  # available experiments
    python -m repro run fig13             # regenerate one table/figure
    python -m repro run all               # the whole battery
    python -m repro survey                # scenario site survey
    python -m repro info                  # key constants and rates
"""

import argparse
import sys


def _cmd_list(_args):
    from repro.experiments import EXPERIMENTS

    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, experiment in EXPERIMENTS.items():
        print(f"{eid.ljust(width)}  {experiment.title}")
    return 0


def _cmd_run(args):
    from repro.experiments import EXPERIMENTS, get_experiment

    if args.experiment == "all":
        for experiment in EXPERIMENTS.values():
            experiment.main()
        return 0
    try:
        get_experiment(args.experiment).main()
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    return 0


def _cmd_survey(_args):
    import numpy as np

    from repro.channel.scenarios import SCENARIOS
    from repro.core import SymBeeLink
    from repro.experiments.common import measure_link, print_table, scaled

    rng = np.random.default_rng(31)
    rows = []
    for name, scenario in SCENARIOS.items():
        for distance in (5, 15, 25):
            link = SymBeeLink(
                link_channel=scenario.link(distance),
                interference=scenario.interference(),
            )
            stats = measure_link(
                link, rng, n_frames=scaled(15), bits_per_frame=64
            )
            rows.append(
                (
                    name,
                    f"{distance} m",
                    f"{stats.throughput_bps / 1000:.2f}",
                    f"{stats.ber:.3f}",
                    f"{stats.capture_rate:.2f}",
                    f"{stats.mean_snr_db:.1f}",
                )
            )
    print_table(
        ("site", "distance", "kbps", "BER", "capture", "SNR dB"),
        rows,
        title="SymBee site survey",
    )
    return 0


def _cmd_info(_args):
    from repro import __version__
    from repro.constants import (
        SYMBEE_BIT_DURATION,
        SYMBEE_RAW_BIT_RATE,
        SYMBEE_STABLE_WINDOW_20MHZ,
    )
    from repro.core.analytics import (
        packet_level_bandwidth_hz,
        shannon_gain_factor,
        speedup_versus,
    )

    print(f"repro {__version__} — SymBee (ICDCS 2018) reproduction")
    print(f"raw bit rate:          {SYMBEE_RAW_BIT_RATE / 1000:.2f} kbps")
    print(f"bit airtime:           {SYMBEE_BIT_DURATION * 1e6:.0f} us")
    print(f"stable window:         {SYMBEE_STABLE_WINDOW_20MHZ} phase values @ 20 Msps")
    print(f"packet-level bandwidth: {packet_level_bandwidth_hz():.1f} Hz")
    print(f"symbol-level gain:     {shannon_gain_factor():.0f}x")
    print(f"speedup vs C-Morse:    {speedup_versus(215.0):.1f}x")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SymBee reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments").set_defaults(
        func=_cmd_list
    )
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.set_defaults(func=_cmd_run)
    sub.add_parser("survey", help="scenario site survey").set_defaults(
        func=_cmd_survey
    )
    sub.add_parser("info", help="key constants and rates").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
