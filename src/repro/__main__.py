"""Command-line interface: reproduce any paper result from the shell.

    python -m repro list                  # available experiments
    python -m repro run fig13             # regenerate one table/figure
    python -m repro run all               # the whole battery
    python -m repro run fig12 --metrics-out m.jsonl --trace   # + telemetry
    python -m repro obs summary m.jsonl   # pretty-print a recorded run
    python -m repro listen --senders 3    # streaming multi-sender decode
    python -m repro send --fault-profile burst   # reliable transport demo
    python -m repro survey                # scenario site survey
    python -m repro info                  # key constants and rates

``-v``/``-q`` tune the ``repro.*`` logger (diagnostics go to stderr;
experiment tables stay on stdout).  ``run all`` keeps going past a
failing experiment and exits non-zero with a pass/fail summary.
"""

import argparse
import signal
import sys
import time
import traceback


def _profiled(fn):
    """Run ``fn`` under cProfile with span tracing; print both summaries.

    Returns ``fn()``'s result.  The hotspot table comes from cProfile;
    the span tree re-renders the ``repro.obs`` trace stream (enabled for
    the duration if it was off) so the wall-clock shape of the pipeline
    sits next to the per-function costs.
    """
    import cProfile
    import pstats

    from repro import obs
    from repro.experiments.common import print_table

    own_trace = not obs.TRACER.enabled
    if own_trace:
        obs.TRACER.reset()
        obs.TRACER.enable()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        spans = obs.TRACER.peek()
        if own_trace:
            obs.TRACER.drain()
            obs.TRACER.disable()

    stats = pstats.Stats(profiler)
    rows = []
    entries = sorted(
        stats.stats.items(), key=lambda kv: kv[1][2], reverse=True
    )
    for (filename, line, name), (cc, nc, tt, ct, _callers) in entries[:15]:
        if filename == "~":
            where = name
        else:
            short = filename.rsplit("/", 1)[-1]
            where = f"{short}:{line}:{name}"
        rows.append((nc, f"{tt:.4f}", f"{ct:.4f}", where))
    print_table(
        ("calls", "tottime", "cumtime", "function"),
        rows,
        title="profile (top 15 by internal time)",
    )
    _print_span_tree(spans, print_table)
    return result


def _print_span_tree(spans, print_table):
    """Aggregate span records into a parent/child tree and print it."""
    if not spans:
        print("(no spans recorded)")
        return
    nodes = {}
    for record in spans:
        key = record["name"]
        node = nodes.setdefault(
            key,
            {
                "calls": 0,
                "seconds": 0.0,
                "parent": record.get("parent"),
                "depth": record["depth"],
            },
        )
        node["calls"] += 1
        node["seconds"] += record["duration_s"]
    children = {}
    roots = []
    for name, node in nodes.items():
        parent = node["parent"]
        if parent is not None and parent in nodes:
            children.setdefault(parent, []).append(name)
        else:
            roots.append(name)
    rows = []

    def walk(name, indent):
        node = nodes[name]
        rows.append(
            (
                "  " * indent + name,
                node["calls"],
                f"{node['seconds']:.4f}",
            )
        )
        for child in sorted(
            children.get(name, ()), key=lambda c: -nodes[c]["seconds"]
        ):
            walk(child, indent + 1)

    for root in sorted(roots, key=lambda r: -nodes[r]["seconds"]):
        walk(root, 0)
    print_table(("span", "calls", "seconds"), rows, title="span tree")


def _cmd_list(_args):
    from repro.experiments import EXPERIMENTS

    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, experiment in EXPERIMENTS.items():
        print(f"{eid.ljust(width)}  {experiment.title}")
    return 0


def _run_one(experiment):
    """Run one experiment; returns its manifest status entry."""
    t0 = time.perf_counter()
    try:
        experiment.main()
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 — the summary reports it
        traceback.print_exc(file=sys.stderr)
        status = "error"
        error = f"{type(exc).__name__}: {exc}"
    return {
        "id": experiment.id,
        "status": status,
        "elapsed_seconds": round(time.perf_counter() - t0, 3),
        "error": error,
    }


def _cmd_run(args):
    from repro import obs
    from repro.experiments import EXPERIMENTS

    if args.experiment == "all":
        experiments = list(EXPERIMENTS.values())
    elif args.experiment in EXPERIMENTS:
        experiments = [EXPERIMENTS[args.experiment]]
    else:
        valid = ", ".join(sorted(EXPERIMENTS))
        print(
            f"unknown experiment {args.experiment!r}; valid ids: {valid}",
            file=sys.stderr,
        )
        return 2

    record = bool(args.metrics_out) or args.trace
    if record:
        obs.REGISTRY.reset()
        if args.trace:
            obs.TRACER.reset()
        obs.enable(trace=args.trace)

    def battery():
        return [_run_one(experiment) for experiment in experiments]

    statuses = _profiled(battery) if args.profile else battery()
    failures = [s for s in statuses if s["status"] != "ok"]

    if record:
        obs.disable()
        snapshot = obs.REGISTRY.snapshot()
        spans = obs.TRACER.drain() if args.trace else []
        if args.metrics_out:
            manifest = obs.build_manifest(
                experiments=statuses,
                metrics=snapshot,
                argv=sys.argv[1:],
                n_spans=len(spans),
            )
            obs.write_run_jsonl(
                args.metrics_out, manifest, snapshot=snapshot, spans=spans
            )
            print(f"telemetry written to {args.metrics_out}", file=sys.stderr)
        elif args.trace:
            from repro.experiments.common import print_table

            totals = {}
            for span in spans:
                entry = totals.setdefault(
                    span["name"], {"calls": 0, "seconds": 0.0}
                )
                entry["calls"] += 1
                entry["seconds"] += span["duration_s"]
            rows = [
                (name, entry["calls"], f"{entry['seconds']:.3f}")
                for name, entry in sorted(
                    totals.items(), key=lambda kv: -kv[1]["seconds"]
                )
            ]
            print_table(("span", "calls", "seconds"), rows, title="trace spans")

    if len(statuses) > 1:
        from repro.experiments.common import print_table

        rows = [
            (s["id"], s["status"], f"{s['elapsed_seconds']:.2f}")
            for s in statuses
        ]
        print_table(
            ("experiment", "status", "seconds"), rows, title="run summary"
        )
        print(
            f"{len(statuses) - len(failures)}/{len(statuses)} experiments passed"
        )
    return 1 if failures else 0


def _cmd_obs(args):
    from repro.obs import read_run_jsonl, summarize_manifest

    try:
        manifest, metrics, spans = read_run_jsonl(args.path)
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"error: {args.path}: {reason}", file=sys.stderr)
        return 2
    except ValueError as error:
        # Not a run manifest — maybe a live time series from
        # ``listen --metrics-stream``; summarize that schema instead.
        from repro.obs import read_metrics_stream, summarize_metrics_stream

        try:
            samples = read_metrics_stream(args.path)
        except (OSError, ValueError):
            samples = []
        if samples:
            print(summarize_metrics_stream(samples, path=args.path))
            return 0
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(summarize_manifest(manifest, metrics, spans))
    return 0


def _cmd_obs_tail(args):
    import time as _time

    from repro.obs import format_live_line, read_metrics_stream
    from repro.obs.export import parse_live_record

    if args.follow:
        try:
            with open(args.path, encoding="utf-8") as fh:
                lineno = 0
                while True:
                    position = fh.tell()
                    line = fh.readline()
                    if not line:
                        _time.sleep(0.2)
                        continue
                    if not line.endswith("\n"):
                        # Mid-write line: rewind and retry once complete.
                        fh.seek(position)
                        _time.sleep(0.2)
                        continue
                    lineno += 1
                    record = parse_live_record(
                        line, path=args.path, lineno=lineno
                    )
                    if record is None:
                        continue
                    print(format_live_line(record))
                    if record.get("final"):
                        return 0
        except OSError as error:
            reason = error.strerror or str(error)
            print(f"error: {args.path}: {reason}", file=sys.stderr)
            return 2
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            return 0

    try:
        samples = read_metrics_stream(args.path)
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"error: {args.path}: {reason}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not samples:
        print(f"error: {args.path}: no live records", file=sys.stderr)
        return 2
    for sample in samples[-1:] if args.once else samples:
        print(format_live_line(sample))
    return 0


def _cmd_listen(args):
    import numpy as np

    from repro import obs
    from repro.channel.scenarios import SCENARIOS
    from repro.experiments.common import print_table
    from repro.network.traffic import StreamSender, StreamTraffic
    from repro.stream import RingBufferSource, StreamEngine
    from repro.zigbee.channels import overlapping_zigbee_channels

    if args.senders < 1:
        print("error: --senders must be >= 1", file=sys.stderr)
        return 2
    scenario = None
    if args.scenario is not None:
        if args.scenario not in SCENARIOS:
            valid = ", ".join(sorted(SCENARIOS))
            print(
                f"error: unknown scenario {args.scenario!r}; "
                f"valid names: {valid}",
                file=sys.stderr,
            )
            return 2
        scenario = SCENARIOS[args.scenario]

    demux = not args.wideband
    channels = (
        overlapping_zigbee_channels(args.wifi_channel) if demux else [13]
    )
    senders = [
        StreamSender(
            sender_id=i,
            zigbee_channel=channels[i % len(channels)],
            reading_interval_s=args.interval,
            data_bits=args.data_bits,
            distance_m=args.distance,
        )
        for i in range(args.senders)
    ]
    traffic = StreamTraffic(
        senders,
        wifi_channel=args.wifi_channel,
        duration_s=args.duration,
        scenario=scenario,
    )

    live_requested = bool(
        args.live or args.metrics_stream or args.prom_out
    )
    if live_requested and args.live_interval < 0:
        print("error: --live-interval must be >= 0", file=sys.stderr)
        return 2
    record = bool(args.metrics_out) or args.trace
    if record or live_requested:
        obs.REGISTRY.reset()
        if args.trace:
            obs.TRACER.reset()
        obs.enable(trace=args.trace)

    collector = None
    sinks = []
    if live_requested:
        if args.metrics_stream:
            sinks.append(obs.JsonlSink(args.metrics_stream))
        if args.prom_out:
            sinks.append(obs.PrometheusFileSink(args.prom_out))
        if args.live:
            sinks.append(obs.TtyDashboard())
        collector = obs.LiveCollector(
            interval_s=args.live_interval, sinks=sinks
        )

    rng = np.random.default_rng(args.seed)
    samples, truth = traffic.capture(rng)
    try:
        engine = StreamEngine(
            wifi_channel=args.wifi_channel,
            demux=demux,
            decimation=args.decimation,
            mode=args.kernel_mode,
            working_dtype=np.complex64 if args.float32 else None,
            scan_kernel=args.scan_kernel,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ring = RingBufferSource(capacity_blocks=args.ring_capacity)

    # Graceful shutdown: SIGINT/SIGTERM stop the *feed*, not the
    # process — the engine then drains the ring, flushes channelizer
    # state, joins the worker pool (unlinking its shared-memory
    # segments) and finalizes the live collector exactly as it would at
    # end-of-capture.  A second signal falls back to the default
    # handler (hard kill).
    stop = {"signal": None}

    def _request_stop(signum, _frame):
        stop["signal"] = signal.Signals(signum).name
        signal.signal(signum, previous[signum])
        print(
            f"{stop['signal']} received: draining stream...",
            file=sys.stderr,
            flush=True,
        )

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # non-main thread / platform quirks
            pass

    def ring_feed():
        # Lock-step producer/consumer: every block passes through the
        # ring on its way to the engine so overrun accounting stays
        # live.  As a generator this also pipelines the parallel path —
        # the pool publishes each block while workers chew on earlier
        # ones, instead of materializing the capture first.
        for block in traffic.blocks(samples, args.block_size):
            if stop["signal"] is not None:
                break
            ring.push(block)
            popped = ring.pop()
            if popped is not None:
                yield popped
        ring.close()
        yield from ring

    def decode():
        if args.jobs != 1:
            return engine.run(
                ring_feed(), jobs=args.jobs, collector=collector
            )
        decoded = []
        for block in ring_feed():
            decoded.extend(engine.process_block(block))
            if collector is not None:
                collector.maybe_tick()
        decoded.extend(engine.finish())
        return decoded

    t0 = time.perf_counter()
    try:
        frames = _profiled(decode) if args.profile else decode()
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
    elapsed = time.perf_counter() - t0

    if collector is not None:
        # The final sample carries the end-of-run cumulative totals —
        # it must land after the decode (including any pool merge).
        collector.finalize()
        for sink in sinks:
            sink.close()
        if args.metrics_stream:
            print(
                f"live telemetry streamed to {args.metrics_stream}",
                file=sys.stderr,
            )
        if args.prom_out:
            print(
                f"prometheus exposition written to {args.prom_out}",
                file=sys.stderr,
            )

    # Score decoded frames against the schedule: each scheduled frame is
    # delivered when some CRC-valid decode on its channel carried its
    # exact bits (consumed greedily in stream order).
    remaining = {}
    for t in truth:
        remaining.setdefault((t.zigbee_channel, t.frame_bits), []).append(t)
    delivered = 0
    rows = []
    for frame in frames:
        matched = False
        if frame.crc_ok:
            queue = remaining.get((frame.zigbee_channel, frame.bits))
            if queue:
                queue.pop(0)
                delivered += 1
                matched = True
        rows.append(
            (
                frame.zigbee_channel,
                frame.preamble_index,
                frame.n_bits,
                "ok" if frame.crc_ok else "fail",
                f"{frame.band_power:.2e}",
                "yes" if matched else "-",
            )
        )
    print_table(
        ("channel", "preamble", "bits", "crc", "power", "delivered"),
        rows,
        title=f"decoded frames ({'demux' if demux else 'wideband'})",
    )

    msps = samples.size / elapsed / 1e6 if elapsed > 0 else float("inf")
    realtime = msps * 1e6 / traffic.sample_rate
    ring_stats = ring.stats()
    print(
        f"{delivered}/{len(truth)} scheduled frames delivered, "
        f"{engine.frames_suppressed} leak copies suppressed, "
        f"{ring_stats['overruns']} ring overruns"
    )
    print(
        f"processed {samples.size} samples in {elapsed:.3f} s "
        f"({msps:.1f} Msps, {realtime:.2f}x realtime)"
    )
    if args.pool_stats:
        pool = engine.pool_stats
        if pool is None:
            print(
                "(no worker-pool stats: decode ran serial)", file=sys.stderr
            )
        else:
            print_table(
                ("stat", "value"),
                [(key, str(value)) for key, value in sorted(pool.items())],
                title="worker pool",
            )

    if record or live_requested:
        obs.disable()
    if record:
        snapshot = obs.REGISTRY.snapshot()
        spans = obs.TRACER.drain() if args.trace else []
        if args.metrics_out:
            manifest = obs.build_manifest(
                experiments=[
                    {
                        "id": "listen",
                        "status": "ok",
                        "elapsed_seconds": round(elapsed, 3),
                        "error": None,
                    }
                ],
                seed=args.seed,
                metrics=snapshot,
                argv=sys.argv[1:],
                n_spans=len(spans),
            )
            obs.write_run_jsonl(
                args.metrics_out, manifest, snapshot=snapshot, spans=spans
            )
            print(f"telemetry written to {args.metrics_out}", file=sys.stderr)

    if stop["signal"] is not None:
        # A requested shutdown that drained cleanly is a success even
        # though the truncated feed delivered fewer frames than planned.
        print(
            f"shut down cleanly on {stop['signal']} "
            f"({delivered}/{len(truth)} scheduled frames before the cut)",
            file=sys.stderr,
        )
        return 0
    return 0 if delivered == len(truth) else 1


def _cmd_send(args):
    from repro import obs
    from repro.experiments.common import print_table
    from repro.transport import SCHEME_NAMES, TransportSession, make_profile

    if args.message is not None and args.size is not None:
        print("error: --message and --size are mutually exclusive", file=sys.stderr)
        return 2
    if args.message is not None:
        message = args.message.encode()
    else:
        import numpy as np

        size = args.size if args.size is not None else 32
        message = np.random.default_rng(args.seed).integers(
            0, 256, size, dtype=np.uint8
        ).tobytes()
    if not message:
        print("error: empty message", file=sys.stderr)
        return 2

    try:
        profile = make_profile(args.fault_profile)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.fec != "adaptive" and args.fec not in SCHEME_NAMES:
        valid = ", ".join(("adaptive",) + SCHEME_NAMES)
        print(f"error: unknown FEC {args.fec!r}; valid: {valid}", file=sys.stderr)
        return 2

    record = bool(args.metrics_out) or args.trace
    if record:
        obs.REGISTRY.reset()
        if args.trace:
            obs.TRACER.reset()
        obs.enable(trace=args.trace)

    session = TransportSession(
        snr_db=args.snr,
        fault_profile=profile,
        seed=args.seed,
        fec=args.fec,
        window=args.window,
        rto_s=args.rto,
        max_attempts=args.max_retries,
    )
    t0 = time.perf_counter()
    result = session.send(message)
    elapsed = time.perf_counter() - t0

    acks_ok = sum(1 for ack in result.acks if ack.ok)
    rows = [
        ("message", f"{len(message)} bytes"),
        ("fault profile", profile.describe()),
        ("snr", f"{args.snr:g} dB"),
        ("fec", args.fec),
        ("fragments", f"{result.frag_count} x {result.fragment_bits} bits"),
        ("transmissions", str(result.n_tx)),
        ("retransmits", str(result.retransmits)),
        ("fec switches", str(result.fec_switches)),
        (
            "schemes",
            ", ".join(
                f"{name}:{count}"
                for name, count in sorted(result.scheme_counts.items())
            ),
        ),
        ("acks", f"{acks_ok}/{len(result.acks)} delivered"),
        ("link time", f"{result.elapsed_s:.3f} s (simulated)"),
        ("goodput", f"{result.goodput_bps:.1f} bps"),
        (
            "delivered",
            "byte-exact" if result.byte_exact else
            ("delivered (mismatch!)" if result.delivered else "FAILED"),
        ),
    ]
    print_table(("field", "value"), rows, title="transport send")

    if record:
        obs.disable()
        snapshot = obs.REGISTRY.snapshot()
        spans = obs.TRACER.drain() if args.trace else []
        if args.metrics_out:
            manifest = obs.build_manifest(
                experiments=[
                    {
                        "id": "send",
                        "status": "ok" if result.byte_exact else "error",
                        "elapsed_seconds": round(elapsed, 3),
                        "error": None if result.byte_exact else "delivery failed",
                    }
                ],
                seed=args.seed,
                metrics=snapshot,
                argv=sys.argv[1:],
                n_spans=len(spans),
            )
            obs.write_run_jsonl(
                args.metrics_out, manifest, snapshot=snapshot, spans=spans
            )
            print(f"telemetry written to {args.metrics_out}", file=sys.stderr)

    return 0 if result.byte_exact else 1


def _cmd_simulate(args):
    import json

    from repro import obs
    from repro.experiments.common import print_table
    from repro.sim import load_manifest, run_campaign

    try:
        manifest = load_manifest(args.manifest) if args.manifest else {}
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    # Flags override manifest entries (a manifest is the durable record;
    # flags are for quick what-ifs on top of it).
    if args.seed is not None:
        manifest["seed"] = args.seed
    if args.duration is not None:
        manifest["duration_s"] = args.duration
    if args.fidelity:
        manifest["fidelity"] = args.fidelity
    topology = dict(manifest.get("topology") or {})
    if args.topology:
        topology["kind"] = args.topology
    if args.nodes is not None:
        topology["n_nodes"] = args.nodes
    if topology:
        manifest["topology"] = topology
    comm = dict(manifest.get("comm") or {})
    if args.scenario:
        comm["scenario"] = args.scenario
    if args.fec:
        comm["fec"] = args.fec
    if args.snr_margin is not None:
        comm["snr_margin_db"] = args.snr_margin
    if comm:
        manifest["comm"] = comm
    traffic = dict(manifest.get("traffic") or {})
    if args.interval is not None:
        traffic["interval_s"] = args.interval
    if args.max_retries is not None:
        traffic["max_retries"] = args.max_retries
    if traffic:
        manifest["traffic"] = traffic

    record = bool(args.metrics_out) or args.trace
    if record:
        obs.REGISTRY.reset()
        if args.trace:
            obs.TRACER.reset()
        obs.enable(trace=args.trace)

    t0 = time.perf_counter()
    try:
        result = run_campaign(
            manifest, cache_dir=args.cache_dir, jobs=args.jobs
        )
    except (TypeError, ValueError) as error:
        if record:
            obs.disable()
        print(f"simulate: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - t0

    summary = result.summary()
    latency = summary["latency"]
    rows = [
        ("fidelity", summary["fidelity"]),
        ("seed", str(summary["seed"])),
        ("nodes / domains", f"{summary['n_nodes']} / {summary['n_domains']}"),
        ("sim duration", f"{summary['duration_s']:g} s"),
        ("frames offered", str(summary["offered"])),
        ("delivered", str(summary["delivered"])),
        ("delivery ratio", f"{summary['delivery_ratio']:.4f}"),
        ("collided", str(summary["collided"])),
        ("lost", str(summary["lost"])),
        ("retries", str(summary["retries"])),
        ("csma defers", str(summary["csma_defers"])),
        ("skipped (node down)", str(summary["skipped_down"])),
        ("channel utilization", f"{summary['utilization']:.4f}"),
        (
            "interferer duty",
            f"{summary['interference']['duty']:.3f} x "
            f"{summary['interference']['n_interferers']} "
            f"({summary['interference']['mean_active']:.3f} mean active)",
        ),
        (
            "latency",
            f"{latency['mean_ms']:.2f} ms mean, "
            f"{latency['p50_ms']:.2f}/{latency['p95_ms']:.2f} p50/p95",
        ),
        ("events", str(summary["events_processed"])),
        (
            "wall clock",
            f"{elapsed:.2f} s "
            f"({summary['offered'] / max(elapsed, 1e-9):.0f} frames/s)",
        ),
    ]
    print_table(
        ("field", "value"),
        rows,
        title=f"fleet campaign: {summary['name']}",
    )

    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as fh:
            fh.write(result.summary_json() + "\n")
        print(f"summary written to {args.summary_out}", file=sys.stderr)

    if record:
        obs.disable()
        snapshot = obs.REGISTRY.snapshot()
        spans = obs.TRACER.drain() if args.trace else []
        if args.metrics_out:
            run_manifest = obs.build_manifest(
                experiments=[
                    {
                        "id": f"simulate:{summary['name']}",
                        "status": "ok",
                        "elapsed_seconds": round(elapsed, 3),
                        "error": None,
                    }
                ],
                seed=summary["seed"],
                metrics=snapshot,
                argv=sys.argv[1:],
                n_spans=len(spans),
            )
            obs.write_run_jsonl(
                args.metrics_out, run_manifest, snapshot=snapshot, spans=spans
            )
            print(f"telemetry written to {args.metrics_out}", file=sys.stderr)

    return 0


def _gateway_engine_kwargs(args):
    """Per-tenant StreamEngine kwargs shared by serve and loadgen."""
    engine = {
        "wifi_channel": args.wifi_channel,
        "demux": args.demux,
        "mode": args.kernel_mode,
    }
    if args.decimation != 1:
        engine["decimation"] = args.decimation
    if args.float32:
        engine["working_dtype"] = "complex64"
    return engine


def _cmd_serve(args):
    import asyncio

    from repro import obs
    from repro.gateway.core import GatewayCore
    from repro.gateway.server import GatewayServer

    # The /metrics endpoint serves the process registry, so serving
    # implies metering.
    obs.REGISTRY.reset()
    obs.enable()
    collector = None
    sinks = []
    if args.metrics_stream or args.prom_out:
        if args.metrics_stream:
            sinks.append(obs.JsonlSink(args.metrics_stream))
        if args.prom_out:
            sinks.append(obs.PrometheusFileSink(args.prom_out))
        collector = obs.LiveCollector(
            interval_s=args.live_interval, sinks=sinks
        )
    try:
        core = GatewayCore(
            engine=_gateway_engine_kwargs(args),
            max_tenants=args.max_tenants,
            ring_capacity=args.ring_capacity,
            jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = GatewayServer(
        core,
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        collector=collector,
    )

    def announce(started):
        # The readiness line CI and scripts wait for.
        message = f"gateway listening on {started.host}:{started.port}"
        if started.metrics_port is not None:
            message += (
                f" (metrics http://{started.host}"
                f":{started.metrics_port}/metrics)"
            )
        print(message, file=sys.stderr, flush=True)

    try:
        asyncio.run(server.run(on_started=announce))
    except KeyboardInterrupt:
        pass  # signal handler already drained; a very early ^C lands here
    finally:
        for sink in sinks:
            sink.close()
        obs.disable()
    print("gateway shut down cleanly", file=sys.stderr)
    return 0


def _cmd_loadgen(args):
    from repro.experiments.common import print_table
    from repro.gateway.loadgen import run_loadgen

    overrides = {}
    if args.config:
        import json

        try:
            with open(args.config, "r", encoding="utf-8") as handle:
                overrides = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.config}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(overrides, dict):
            print(
                f"error: {args.config} must hold a JSON object",
                file=sys.stderr,
            )
            return 2

    def setting(name, flag_value, default):
        # Priority: explicit CLI flag > config file > default.
        if flag_value is not None:
            return flag_value
        return overrides.get(name, default)

    engine = overrides.get("engine")
    if engine is None and (
        args.demux or args.decimation != 1 or args.float32
        or args.kernel_mode != "exact" or args.wifi_channel != 1
    ):
        engine = _gateway_engine_kwargs(args)

    client = None
    port = setting("port", args.port, None)
    if port is not None:
        from repro.gateway.protocol import GatewayClient

        try:
            client = GatewayClient(
                setting("host", args.host, "127.0.0.1"),
                port,
                connect_wait_s=args.connect_wait,
            )
        except OSError as exc:
            print(f"error: cannot connect to gateway: {exc}", file=sys.stderr)
            return 2
    try:
        report = run_loadgen(
            tenants=setting("tenants", args.tenants, 2),
            senders=setting("senders", args.senders, 2),
            seed=setting("seed", args.seed, 7),
            duration_s=setting("duration_s", args.duration, 0.03),
            block_size=setting("block_size", args.block_size, 16384),
            message_bytes=setting("message_bytes", args.message_bytes, 5),
            scheme=setting("scheme", args.scheme, "hamming"),
            channels=tuple(overrides.get("channels", (13,))),
            engine=engine,
            jobs=setting("jobs", args.jobs, 1),
            client=client,
        )
    finally:
        if client is not None:
            try:
                client.bye()
            except Exception:
                pass
            client.close()

    print_table(
        (
            "tenant", "expected", "delivered", "matched",
            "shed blocks", "byte exact",
        ),
        [
            (
                row["tenant"],
                str(row["expected"]),
                str(row["delivered"]),
                str(row["matched"]),
                str(row["shed_blocks"]),
                "yes" if row["byte_exact"] else "NO",
            )
            for row in report["tenants"]
        ],
        title=(
            "gateway load "
            f"({'wire' if client is not None else 'in-process'})"
        ),
    )
    print(
        f"offered {report['total_samples']} samples "
        f"({report['stream_seconds'] * 1000:.1f} ms of stream) in "
        f"{report['elapsed_s']:.3f} s — "
        f"{report['aggregate_x_realtime']:.2f}x realtime aggregate"
    )
    if not report["ok"]:
        print("error: delivery was not byte-exact", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_trajectory(args):
    from repro.bench.trajectory import print_trajectory, trajectory_report

    if args.json:
        import json

        report = trajectory_report(args.root)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["artifacts"] else 1
    return print_trajectory(args.root)


def _cmd_survey(_args):
    import numpy as np

    from repro.channel.scenarios import SCENARIOS
    from repro.core import SymBeeLink
    from repro.experiments.common import measure_link, print_table, scaled

    rng = np.random.default_rng(31)
    rows = []
    for name, scenario in SCENARIOS.items():
        for distance in (5, 15, 25):
            link = SymBeeLink(
                link_channel=scenario.link(distance),
                interference=scenario.interference(),
            )
            stats = measure_link(
                link, rng, n_frames=scaled(15), bits_per_frame=64
            )
            rows.append(
                (
                    name,
                    f"{distance} m",
                    f"{stats.throughput_bps / 1000:.2f}",
                    f"{stats.ber:.3f}",
                    f"{stats.capture_rate:.2f}",
                    f"{stats.mean_snr_db:.1f}",
                )
            )
    print_table(
        ("site", "distance", "kbps", "BER", "capture", "SNR dB"),
        rows,
        title="SymBee site survey",
    )
    return 0


def _cmd_info(_args):
    from repro import __version__
    from repro.constants import (
        SYMBEE_BIT_DURATION,
        SYMBEE_RAW_BIT_RATE,
        SYMBEE_STABLE_WINDOW_20MHZ,
    )
    from repro.core.analytics import (
        packet_level_bandwidth_hz,
        shannon_gain_factor,
        speedup_versus,
    )

    print(f"repro {__version__} — SymBee (ICDCS 2018) reproduction")
    print(f"raw bit rate:          {SYMBEE_RAW_BIT_RATE / 1000:.2f} kbps")
    print(f"bit airtime:           {SYMBEE_BIT_DURATION * 1e6:.0f} us")
    print(f"stable window:         {SYMBEE_STABLE_WINDOW_20MHZ} phase values @ 20 Msps")
    print(f"packet-level bandwidth: {packet_level_bandwidth_hz():.1f} Hz")
    print(f"symbol-level gain:     {shannon_gain_factor():.0f}x")
    print(f"speedup vs C-Morse:    {speedup_versus(215.0):.1f}x")
    print(
        "metric namespaces:     "
        "link.* decoder.* preamble.* network.* stream.* transport.* "
        "sim.* gateway.*"
    )
    return 0


def build_parser():
    from repro.stream.scan import DEFAULT_SCAN_KERNEL, SCAN_KERNELS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SymBee reproduction command line",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more diagnostics on stderr (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="errors only on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments").set_defaults(
        func=_cmd_list
    )
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a run manifest + metric/span JSONL streams to PATH",
    )
    run.add_argument(
        "--trace", action="store_true",
        help="record pipeline trace spans (into --metrics-out, or a "
             "span-total table when no output path is given)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="run the experiments under cProfile and print a hotspot "
             "table plus the pipeline span tree",
    )
    run.set_defaults(func=_cmd_run)
    listen = sub.add_parser(
        "listen",
        help="stream a synthesized multi-sender capture through the "
             "block-by-block receive engine",
    )
    listen.add_argument(
        "--senders", type=int, default=3,
        help="number of SymBee senders (default 3)",
    )
    listen.add_argument(
        "--duration", type=float, default=0.05, metavar="SECONDS",
        help="capture length in seconds (default 0.05)",
    )
    listen.add_argument(
        "--block-size", type=int, default=16384, metavar="SAMPLES",
        help="receive block size in samples (default 16384)",
    )
    listen.add_argument(
        "--wifi-channel", type=int, default=1,
        help="WiFi receive channel (default 1)",
    )
    listen.add_argument(
        "--seed", type=int, default=7,
        help="traffic/noise RNG seed (default 7)",
    )
    listen.add_argument(
        "--interval", type=float, default=0.01, metavar="SECONDS",
        help="mean per-sender reading interval (default 0.01)",
    )
    listen.add_argument(
        "--data-bits", type=int, default=16,
        help="payload bits per reading (default 16)",
    )
    listen.add_argument(
        "--distance", type=float, default=5.0, metavar="METERS",
        help="sender-receiver distance when a scenario is set (default 5)",
    )
    listen.add_argument(
        "--scenario", default=None,
        help="propagation scenario name (default: ideal channel)",
    )
    listen.add_argument(
        "--ring-capacity", type=int, default=64, metavar="BLOCKS",
        help="ring buffer capacity in blocks (default 64)",
    )
    listen.add_argument(
        "--wideband", action="store_true",
        help="single wideband session on ZigBee channel 13 instead of "
             "per-channel demux",
    )
    listen.add_argument(
        "--decimation", type=int, default=None, metavar="D",
        help="channelizer decimation factor (demux only; D must divide "
             "the product lag and bit period: 1, 2, 4 or 8 at 20 Msps — "
             "the vote window floors at D=8 — default 1, no decimation)",
    )
    listen.add_argument(
        "--kernel-mode", choices=("exact", "fast"), default="exact",
        help="DSP kernel mode: 'exact' keeps bit-exact block-size "
             "invariance, 'fast' uses native complex kernels "
             "(decode-equivalent; default exact)",
    )
    listen.add_argument(
        "--scan-kernel", choices=tuple(SCAN_KERNELS), metavar="KERNEL",
        default=DEFAULT_SCAN_KERNEL,
        help="preamble scan backend: 'batched' (default; 2-D batched "
             "cascade, bit-identical to 'grouped'), 'grouped' (PR-5 "
             "reference), 'fft' (overlap-save FFT fold profile, "
             "decode-equivalent)",
    )
    listen.add_argument(
        "--float32", action="store_true",
        help="complex64 working dtype (fast kernel mode only)",
    )
    listen.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="decode demux channels across N worker processes "
             "(default 1, serial)",
    )
    listen.add_argument(
        "--pool-stats", action="store_true",
        help="print worker-pool transport stats after a --jobs decode "
             "(blocks published, shared bytes, peak in-flight segments)",
    )
    listen.add_argument(
        "--profile", action="store_true",
        help="run the decode under cProfile and print a hotspot table "
             "plus the pipeline span tree",
    )
    listen.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a run manifest + metric/span JSONL streams to PATH",
    )
    listen.add_argument(
        "--trace", action="store_true",
        help="record per-block trace spans (into --metrics-out)",
    )
    listen.add_argument(
        "--live", action="store_true",
        help="print a live telemetry dashboard line per collector tick "
             "on stderr (throughput, realtime margin, frame/CRC/ring "
             "health)",
    )
    listen.add_argument(
        "--live-interval", type=float, default=0.5, metavar="SECONDS",
        help="live collector tick interval; 0 ticks every block "
             "(default 0.5)",
    )
    listen.add_argument(
        "--metrics-stream", metavar="PATH", default=None,
        help="append one live-sample JSON line per collector tick to "
             "PATH (replay with 'obs tail PATH')",
    )
    listen.add_argument(
        "--prom-out", metavar="PATH", default=None,
        help="rewrite PATH as a Prometheus text exposition on every "
             "collector tick",
    )
    listen.set_defaults(func=_cmd_listen)

    def add_engine_flags(command, default_kernel_mode="exact"):
        # Per-tenant engine shape shared by serve and loadgen.  The
        # gateway default is one wideband session per tenant; --demux
        # gives each tenant the multi-channel channelizer path.
        command.add_argument(
            "--demux", action="store_true",
            help="per-channel demux engine per tenant (default: one "
                 "wideband session per tenant)",
        )
        command.add_argument(
            "--wifi-channel", type=int, default=1,
            help="WiFi receive channel (default 1)",
        )
        command.add_argument(
            "--decimation", type=int, default=1, metavar="D",
            help="channelizer decimation factor (demux only; default 1)",
        )
        command.add_argument(
            "--kernel-mode", choices=("exact", "fast"),
            default=default_kernel_mode,
            help=f"DSP kernel mode (default {default_kernel_mode})",
        )
        command.add_argument(
            "--float32", action="store_true",
            help="complex64 working dtype (fast kernel mode only)",
        )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant stream-serving gateway (length-"
             "prefixed tenant protocol + /metrics; SIGINT/SIGTERM "
             "drains gracefully)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=7713,
        help="tenant protocol port; 0 picks a free port (default 7713)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve GET /metrics (Prometheus text) on PORT "
             "(0 picks a free port; default: no metrics listener)",
    )
    serve.add_argument(
        "--max-tenants", type=int, default=8, metavar="N",
        help="admission limit on concurrent tenant streams (default 8)",
    )
    serve.add_argument(
        "--ring-capacity", type=int, default=64, metavar="BLOCKS",
        help="per-tenant ring capacity in blocks; a full ring sheds "
             "with an explicit overrun code (default 64)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="multiplex tenants across N pool workers (default 1, "
             "inline decode)",
    )
    add_engine_flags(serve)
    serve.add_argument(
        "--metrics-stream", metavar="PATH", default=None,
        help="append one live-sample JSON line per collector tick to "
             "PATH (replay with 'obs tail PATH')",
    )
    serve.add_argument(
        "--prom-out", metavar="PATH", default=None,
        help="atomically rewrite a Prometheus exposition file per tick",
    )
    serve.add_argument(
        "--live-interval", type=float, default=0.5, metavar="SECONDS",
        help="live collector tick interval (default 0.5)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="deterministic gateway load harness: N tenants x M "
             "scripted senders, byte-exact delivery verification",
    )
    loadgen.add_argument(
        "--config", metavar="PATH", default=None,
        help="JSON config with loadgen settings (CLI flags override; "
             "see examples/gateway_loadgen.json)",
    )
    loadgen.add_argument(
        "--tenants", type=int, default=None,
        help="concurrent tenant streams (default 2)",
    )
    loadgen.add_argument(
        "--senders", type=int, default=None,
        help="scripted SymBee senders per tenant (default 2)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=None,
        help="workload RNG seed (default 7)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="per-tenant capture length (default 0.03)",
    )
    loadgen.add_argument(
        "--block-size", type=int, default=None, metavar="SAMPLES",
        help="submitted block size in samples (default 16384)",
    )
    loadgen.add_argument(
        "--message-bytes", type=int, default=None, metavar="BYTES",
        help="message size each sender fragments (default 5)",
    )
    loadgen.add_argument(
        "--scheme", choices=("none", "hamming", "conv"), default=None,
        help="transport FEC scheme for the scripted fragments "
             "(default hamming)",
    )
    loadgen.add_argument(
        "--host", default=None,
        help="gateway host for wire mode (default 127.0.0.1)",
    )
    loadgen.add_argument(
        "--port", type=int, default=None,
        help="gateway port: set to drive a running 'serve' over the "
             "wire (default: in-process gateway core)",
    )
    loadgen.add_argument(
        "--connect-wait", type=float, default=10.0, metavar="SECONDS",
        help="retry the first connection for up to this long — lets CI "
             "start 'serve' in the background (default 10)",
    )
    loadgen.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="in-process mode: pool workers for the gateway core "
             "(default 1)",
    )
    add_engine_flags(loadgen)
    loadgen.set_defaults(func=_cmd_loadgen)

    obs = sub.add_parser("obs", help="inspect recorded telemetry")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summary = obs_sub.add_parser(
        "summary", help="pretty-print a run manifest JSONL"
    )
    summary.add_argument(
        "path",
        help="JSONL file from 'run --metrics-out' or a live time series "
             "from 'listen --metrics-stream'",
    )
    summary.set_defaults(func=_cmd_obs)
    tail = obs_sub.add_parser(
        "tail",
        help="replay a live telemetry time series as dashboard lines",
    )
    tail.add_argument(
        "path", help="JSONL file from 'listen --metrics-stream'"
    )
    tail.add_argument(
        "--once", action="store_true",
        help="print only the most recent sample",
    )
    tail.add_argument(
        "--follow", action="store_true",
        help="keep reading appended samples until the final record "
             "(or Ctrl-C)",
    )
    tail.set_defaults(func=_cmd_obs_tail)
    send = sub.add_parser(
        "send",
        help="deliver one message reliably over a faulted SymBee link "
             "(segmentation + selective-repeat ARQ + FEC adaptation)",
    )
    send.add_argument(
        "--message", default=None,
        help="message text to deliver (default: 32 seeded random bytes)",
    )
    send.add_argument(
        "--size", type=int, default=None, metavar="BYTES",
        help="send BYTES seeded random bytes instead of --message",
    )
    send.add_argument(
        "--snr", type=float, default=3.0,
        help="base link SNR in dB before fault dynamics (default 3)",
    )
    send.add_argument(
        "--fault-profile", default="none",
        help="channel dynamics: none, burst, interference, snr-ramp, "
             "ack-blackout (default none)",
    )
    send.add_argument(
        "--fec", default="adaptive",
        help="adaptive, none, hamming or conv (default adaptive)",
    )
    send.add_argument(
        "--seed", type=int, default=0,
        help="session RNG seed (default 0)",
    )
    send.add_argument(
        "--window", type=int, default=8,
        help="selective-repeat send window (default 8)",
    )
    send.add_argument(
        "--max-retries", type=int, default=12, metavar="N",
        help="transmission attempts per fragment before giving up "
             "(default 12)",
    )
    send.add_argument(
        "--rto", type=float, default=0.35, metavar="SECONDS",
        help="retransmit timeout (default 0.35)",
    )
    send.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a run manifest + metric/span JSONL streams to PATH",
    )
    send.add_argument(
        "--trace", action="store_true",
        help="record transport trace spans (into --metrics-out)",
    )
    send.set_defaults(func=_cmd_send)
    simulate = sub.add_parser(
        "simulate", help="fleet-scale discrete-event network campaign"
    )
    simulate.add_argument(
        "manifest", nargs="?", default=None, metavar="MANIFEST",
        help="scenario manifest (JSON); flags below override its entries",
    )
    simulate.add_argument(
        "--nodes", type=int, default=None,
        help="sensor count (grid/random topologies)",
    )
    simulate.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="simulated seconds of traffic generation",
    )
    simulate.add_argument(
        "--topology", choices=("grid", "random", "cluster"), default=None,
        help="node placement model",
    )
    simulate.add_argument(
        "--fidelity", choices=("packet", "sample"), default=None,
        help="packet = calibrated fast path, sample = full PHY per frame",
    )
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--scenario", default=None,
        help="channel scenario name (see 'survey')",
    )
    simulate.add_argument(
        "--fec", choices=("none", "hamming", "conv"), default=None,
        help="link-layer FEC scheme",
    )
    simulate.add_argument(
        "--snr-margin", type=float, default=None, metavar="DB",
        help="link SNR at 1 m reference distance (positions the fleet "
             "on the delivery curve)",
    )
    simulate.add_argument(
        "--interval", type=float, default=None, metavar="S",
        help="mean per-node reading interval (Poisson)",
    )
    simulate.add_argument(
        "--max-retries", type=int, default=None,
        help="MAC retries per frame",
    )
    simulate.add_argument(
        "--summary-out", metavar="PATH", default=None,
        help="write the deterministic campaign summary JSON to PATH",
    )
    simulate.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="delivery-table cache directory (default ~/.cache/repro/sim)",
    )
    simulate.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for table calibration",
    )
    simulate.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a run manifest + metric/span JSONL streams to PATH",
    )
    simulate.add_argument(
        "--trace", action="store_true",
        help="record sim trace spans (into --metrics-out)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    bench = sub.add_parser("bench", help="benchmark artifact tooling")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    trajectory = bench_sub.add_parser(
        "trajectory",
        help="aggregate every BENCH_*.json into one cross-PR report",
    )
    trajectory.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding the artifacts (default: cwd)",
    )
    trajectory.add_argument(
        "--json", action="store_true",
        help="emit the report as a machine-readable JSON document "
             "instead of tables",
    )
    trajectory.set_defaults(func=_cmd_bench_trajectory)
    sub.add_parser("survey", help="scenario site survey").set_defaults(
        func=_cmd_survey
    )
    sub.add_parser("info", help="key constants and rates").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(args.verbose - args.quiet)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
