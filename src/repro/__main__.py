"""Command-line interface: reproduce any paper result from the shell.

    python -m repro list                  # available experiments
    python -m repro run fig13             # regenerate one table/figure
    python -m repro run all               # the whole battery
    python -m repro run fig12 --metrics-out m.jsonl --trace   # + telemetry
    python -m repro obs summary m.jsonl   # pretty-print a recorded run
    python -m repro survey                # scenario site survey
    python -m repro info                  # key constants and rates

``-v``/``-q`` tune the ``repro.*`` logger (diagnostics go to stderr;
experiment tables stay on stdout).  ``run all`` keeps going past a
failing experiment and exits non-zero with a pass/fail summary.
"""

import argparse
import sys
import time
import traceback


def _cmd_list(_args):
    from repro.experiments import EXPERIMENTS

    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, experiment in EXPERIMENTS.items():
        print(f"{eid.ljust(width)}  {experiment.title}")
    return 0


def _run_one(experiment):
    """Run one experiment; returns its manifest status entry."""
    t0 = time.perf_counter()
    try:
        experiment.main()
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 — the summary reports it
        traceback.print_exc(file=sys.stderr)
        status = "error"
        error = f"{type(exc).__name__}: {exc}"
    return {
        "id": experiment.id,
        "status": status,
        "elapsed_seconds": round(time.perf_counter() - t0, 3),
        "error": error,
    }


def _cmd_run(args):
    from repro import obs
    from repro.experiments import EXPERIMENTS

    if args.experiment == "all":
        experiments = list(EXPERIMENTS.values())
    elif args.experiment in EXPERIMENTS:
        experiments = [EXPERIMENTS[args.experiment]]
    else:
        valid = ", ".join(sorted(EXPERIMENTS))
        print(
            f"unknown experiment {args.experiment!r}; valid ids: {valid}",
            file=sys.stderr,
        )
        return 2

    record = bool(args.metrics_out) or args.trace
    if record:
        obs.REGISTRY.reset()
        if args.trace:
            obs.TRACER.reset()
        obs.enable(trace=args.trace)

    statuses = [_run_one(experiment) for experiment in experiments]
    failures = [s for s in statuses if s["status"] != "ok"]

    if record:
        obs.disable()
        snapshot = obs.REGISTRY.snapshot()
        spans = obs.TRACER.drain() if args.trace else []
        if args.metrics_out:
            manifest = obs.build_manifest(
                experiments=statuses,
                metrics=snapshot,
                argv=sys.argv[1:],
                n_spans=len(spans),
            )
            obs.write_run_jsonl(
                args.metrics_out, manifest, snapshot=snapshot, spans=spans
            )
            print(f"telemetry written to {args.metrics_out}", file=sys.stderr)
        elif args.trace:
            from repro.experiments.common import print_table

            totals = {}
            for span in spans:
                entry = totals.setdefault(
                    span["name"], {"calls": 0, "seconds": 0.0}
                )
                entry["calls"] += 1
                entry["seconds"] += span["duration_s"]
            rows = [
                (name, entry["calls"], f"{entry['seconds']:.3f}")
                for name, entry in sorted(
                    totals.items(), key=lambda kv: -kv[1]["seconds"]
                )
            ]
            print_table(("span", "calls", "seconds"), rows, title="trace spans")

    if len(statuses) > 1:
        from repro.experiments.common import print_table

        rows = [
            (s["id"], s["status"], f"{s['elapsed_seconds']:.2f}")
            for s in statuses
        ]
        print_table(
            ("experiment", "status", "seconds"), rows, title="run summary"
        )
        print(
            f"{len(statuses) - len(failures)}/{len(statuses)} experiments passed"
        )
    return 1 if failures else 0


def _cmd_obs(args):
    from repro.obs import read_run_jsonl, summarize_manifest

    try:
        manifest, metrics, spans = read_run_jsonl(args.path)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(summarize_manifest(manifest, metrics, spans))
    return 0


def _cmd_survey(_args):
    import numpy as np

    from repro.channel.scenarios import SCENARIOS
    from repro.core import SymBeeLink
    from repro.experiments.common import measure_link, print_table, scaled

    rng = np.random.default_rng(31)
    rows = []
    for name, scenario in SCENARIOS.items():
        for distance in (5, 15, 25):
            link = SymBeeLink(
                link_channel=scenario.link(distance),
                interference=scenario.interference(),
            )
            stats = measure_link(
                link, rng, n_frames=scaled(15), bits_per_frame=64
            )
            rows.append(
                (
                    name,
                    f"{distance} m",
                    f"{stats.throughput_bps / 1000:.2f}",
                    f"{stats.ber:.3f}",
                    f"{stats.capture_rate:.2f}",
                    f"{stats.mean_snr_db:.1f}",
                )
            )
    print_table(
        ("site", "distance", "kbps", "BER", "capture", "SNR dB"),
        rows,
        title="SymBee site survey",
    )
    return 0


def _cmd_info(_args):
    from repro import __version__
    from repro.constants import (
        SYMBEE_BIT_DURATION,
        SYMBEE_RAW_BIT_RATE,
        SYMBEE_STABLE_WINDOW_20MHZ,
    )
    from repro.core.analytics import (
        packet_level_bandwidth_hz,
        shannon_gain_factor,
        speedup_versus,
    )

    print(f"repro {__version__} — SymBee (ICDCS 2018) reproduction")
    print(f"raw bit rate:          {SYMBEE_RAW_BIT_RATE / 1000:.2f} kbps")
    print(f"bit airtime:           {SYMBEE_BIT_DURATION * 1e6:.0f} us")
    print(f"stable window:         {SYMBEE_STABLE_WINDOW_20MHZ} phase values @ 20 Msps")
    print(f"packet-level bandwidth: {packet_level_bandwidth_hz():.1f} Hz")
    print(f"symbol-level gain:     {shannon_gain_factor():.0f}x")
    print(f"speedup vs C-Morse:    {speedup_versus(215.0):.1f}x")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SymBee reproduction command line",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more diagnostics on stderr (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="errors only on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments").set_defaults(
        func=_cmd_list
    )
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a run manifest + metric/span JSONL streams to PATH",
    )
    run.add_argument(
        "--trace", action="store_true",
        help="record pipeline trace spans (into --metrics-out, or a "
             "span-total table when no output path is given)",
    )
    run.set_defaults(func=_cmd_run)
    obs = sub.add_parser("obs", help="inspect recorded telemetry")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summary = obs_sub.add_parser(
        "summary", help="pretty-print a run manifest JSONL"
    )
    summary.add_argument("path", help="JSONL file from 'run --metrics-out'")
    summary.set_defaults(func=_cmd_obs)
    sub.add_parser("survey", help="scenario site survey").set_defaults(
        func=_cmd_survey
    )
    sub.add_parser("info", help="key constants and rates").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(args.verbose - args.quiet)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
