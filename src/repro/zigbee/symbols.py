"""IEEE 802.15.4 symbol-to-chip mapping (the paper's Table I).

The 2.4 GHz O-QPSK PHY spreads each 4-bit data symbol into a 32-chip
pseudo-noise sequence.  Symbols 1-7 are the base sequence (symbol 0)
cyclically right-shifted by 4 chips per step; symbols 8-15 repeat symbols
0-7 with every odd-indexed chip inverted, which conjugates the transmitted
baseband signal (odd chips feed the quadrature branch).

Chip strings are written transmission-first: character 0 is chip c0, the
first chip on air.  Symbol 0 and symbol F match the paper's Table I
verbatim.
"""

import numpy as np

_BASE_SEQUENCE = "11011001110000110101001000101110"


def _cyclic_right_shift(sequence, shift):
    shift %= len(sequence)
    if shift == 0:
        return sequence
    return sequence[-shift:] + sequence[:-shift]


def _invert_odd_chips(sequence):
    return "".join(
        chip if index % 2 == 0 else ("1" if chip == "0" else "0")
        for index, chip in enumerate(sequence)
    )


def _build_chip_table():
    first_half = [_cyclic_right_shift(_BASE_SEQUENCE, 4 * s) for s in range(8)]
    second_half = [_invert_odd_chips(seq) for seq in first_half]
    table = first_half + second_half
    return tuple(
        tuple(int(chip) for chip in sequence) for sequence in table
    )


#: ``CHIP_TABLE[s]`` is the 32-chip tuple for data symbol ``s`` (0x0-0xF).
CHIP_TABLE = _build_chip_table()

#: The same table as a (16, 32) int8 array for vectorized correlation.
CHIP_MATRIX = np.array(CHIP_TABLE, dtype=np.int8)

#: Antipodal (+1/-1) version, with chip 0 -> +1 and chip 1 -> -1 to match
#: the paper's pulse polarity convention (Section III-B step (ii)).
CHIP_MATRIX_ANTIPODAL = np.where(CHIP_MATRIX == 0, 1, -1).astype(np.int8)

_CHIPS_TO_SYMBOL = {CHIP_TABLE[s]: s for s in range(16)}


def chips_for_symbol(symbol):
    """32-chip sequence (tuple of 0/1) for a 4-bit data symbol."""
    if not 0 <= symbol <= 0xF:
        raise ValueError(f"symbol must be in 0..15, got {symbol}")
    return CHIP_TABLE[symbol]


def symbol_for_chips(chips):
    """Exact inverse lookup of :func:`chips_for_symbol`.

    Raises ``KeyError`` for a sequence outside the table; noisy sequences
    should go through :func:`repro.zigbee.dsss.despread` instead.
    """
    return _CHIPS_TO_SYMBOL[tuple(int(c) for c in chips)]


def bytes_to_symbols(payload, nibble_order="low-first"):
    """Split bytes into 4-bit data symbols in transmission order.

    802.15.4 sends the low nibble of each octet first (``"low-first"``).
    ``"high-first"`` reproduces the byte values as printed in the SymBee
    paper (e.g. 0x67 for the (6,7) pair); see DESIGN.md Section 2.
    """
    symbols = []
    for byte in bytes(payload):
        low, high = byte & 0xF, byte >> 4
        if nibble_order == "low-first":
            symbols.extend((low, high))
        elif nibble_order == "high-first":
            symbols.extend((high, low))
        else:
            raise ValueError(f"unknown nibble_order: {nibble_order!r}")
    return symbols


def symbols_to_bytes(symbols, nibble_order="low-first"):
    """Inverse of :func:`bytes_to_symbols`; requires an even symbol count."""
    symbols = list(symbols)
    if len(symbols) % 2 != 0:
        raise ValueError("symbol count must be even to form whole bytes")
    for s in symbols:
        if not 0 <= s <= 0xF:
            raise ValueError(f"symbol out of range: {s}")
    out = bytearray()
    for first, second in zip(symbols[0::2], symbols[1::2]):
        if nibble_order == "low-first":
            out.append(first | (second << 4))
        elif nibble_order == "high-first":
            out.append((first << 4) | second)
        else:
            raise ValueError(f"unknown nibble_order: {nibble_order!r}")
    return bytes(out)
