"""IEEE 802.15.4 (2.4 GHz O-QPSK PHY) substrate.

Everything the SymBee sender side relies on: the symbol-to-chip DSSS table
(paper Table I), the O-QPSK half-sine modulator whose waveform is
cross-observed at WiFi, PHY/MAC framing, and a coherent receiver used for
the cross-technology-broadcast path (paper Section VI-A) and the baselines.
"""

from repro.zigbee.symbols import (
    CHIP_TABLE,
    chips_for_symbol,
    symbol_for_chips,
    bytes_to_symbols,
    symbols_to_bytes,
)
from repro.zigbee.crc import crc16_itut, append_fcs, check_fcs
from repro.zigbee.dsss import spread, despread
from repro.zigbee.oqpsk import OqpskModulator, OqpskDemodulator
from repro.zigbee.frame import PhyFrame, build_ppdu_symbols, parse_ppdu_symbols
from repro.zigbee.mac import MacFrame
from repro.zigbee.channels import (
    ZIGBEE_CHANNELS,
    zigbee_channel_frequency,
    overlapping_wifi_channels,
)
from repro.zigbee.csma import CsmaCa, CsmaOutcome
from repro.zigbee.transmitter import ZigBeeTransmitter
from repro.zigbee.receiver import ZigBeeReceiver

__all__ = [
    "CHIP_TABLE",
    "chips_for_symbol",
    "symbol_for_chips",
    "bytes_to_symbols",
    "symbols_to_bytes",
    "crc16_itut",
    "append_fcs",
    "check_fcs",
    "spread",
    "despread",
    "OqpskModulator",
    "OqpskDemodulator",
    "PhyFrame",
    "build_ppdu_symbols",
    "parse_ppdu_symbols",
    "MacFrame",
    "ZIGBEE_CHANNELS",
    "zigbee_channel_frequency",
    "overlapping_wifi_channels",
    "CsmaCa",
    "CsmaOutcome",
    "ZigBeeTransmitter",
    "ZigBeeReceiver",
]
