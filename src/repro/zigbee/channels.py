"""2.4 GHz channel maps for ZigBee and their overlap with WiFi.

ZigBee channels 11-26 sit at 2405 + 5*(k-11) MHz.  WiFi channels 1-13 sit
at 2412 + 5*(k-1) MHz with ~20 MHz occupancy, so each WiFi channel overlaps
four ZigBee channels at centre-frequency offsets of (3 + 5m) MHz,
m in {-2,-1,0,1} — the fact the paper's Appendix B leans on for its
constant CFO-compensation term.
"""

from functools import lru_cache

#: ZigBee channel number -> centre frequency in Hz.
ZIGBEE_CHANNELS = {k: (2405 + 5 * (k - 11)) * 1_000_000.0 for k in range(11, 27)}


def zigbee_channel_frequency(channel):
    """Centre frequency of a 2.4 GHz ZigBee channel (11-26)."""
    try:
        return ZIGBEE_CHANNELS[channel]
    except KeyError:
        raise ValueError(f"ZigBee channel must be 11..26, got {channel}") from None


@lru_cache(maxsize=None)
def _overlapping_wifi_channels(zigbee_channel, wifi_bandwidth_hz):
    from repro.wifi.channels import WIFI_CHANNELS
    from repro.constants import ZIGBEE_BANDWIDTH

    f_zigbee = zigbee_channel_frequency(zigbee_channel)
    half_span = wifi_bandwidth_hz / 2.0 - ZIGBEE_BANDWIDTH / 2.0
    return tuple(
        ch
        for ch, f_wifi in WIFI_CHANNELS.items()
        if abs(f_zigbee - f_wifi) <= half_span
    )


def overlapping_wifi_channels(zigbee_channel, wifi_bandwidth_hz=20e6):
    """WiFi channels (1-13) whose band contains the ZigBee channel.

    Overlap is judged on the ZigBee signal's 2 MHz occupancy falling inside
    the WiFi channel's bandwidth.
    """
    return list(_overlapping_wifi_channels(zigbee_channel, float(wifi_bandwidth_hz)))


def overlapping_zigbee_channels(wifi_channel, wifi_bandwidth_hz=20e6):
    """ZigBee channels (11-26) falling inside a WiFi channel's band.

    The inverse of :func:`overlapping_wifi_channels`: the sub-bands a
    wideband WiFi receiver on ``wifi_channel`` can observe concurrently —
    one demux session per entry in the streaming receive engine.  Every
    20 MHz WiFi channel covers four ZigBee channels at centre-frequency
    offsets of (3 + 5m) MHz, m in {-2,-1,0,1} (paper Appendix B).
    """
    return [
        ch
        for ch in ZIGBEE_CHANNELS
        if wifi_channel in _overlapping_wifi_channels(ch, float(wifi_bandwidth_hz))
    ]


@lru_cache(maxsize=None)
def frequency_offset_hz(zigbee_channel, wifi_channel):
    """Centre-frequency offset f_zigbee - f_wifi in Hz.

    For every overlapping pair this is (3 + 5m) MHz, m in {-2,-1,0,1}
    (paper Appendix B).  Pure lookup arithmetic, so the result is
    memoized (link construction calls this per trial in sweeps).
    """
    from repro.wifi.channels import wifi_channel_frequency

    return zigbee_channel_frequency(zigbee_channel) - wifi_channel_frequency(
        wifi_channel
    )
