"""Direct-sequence spread spectrum: symbol <-> chip conversion.

Spreading is table lookup; despreading is minimum-Hamming-distance (for
hard chip decisions) or maximum-correlation (for soft chip values) against
all 16 sequences, which is the optimum detector for this code set.
"""

import numpy as np

from repro.zigbee.symbols import CHIP_MATRIX, CHIP_MATRIX_ANTIPODAL, CHIP_TABLE


def spread(symbols):
    """Concatenate the 32-chip sequences of ``symbols`` into one int array."""
    symbols = list(symbols)
    if not symbols:
        return np.empty(0, dtype=np.int8)
    for s in symbols:
        if not 0 <= s <= 0xF:
            raise ValueError(f"symbol out of range: {s}")
    return np.concatenate([CHIP_MATRIX[s] for s in symbols])


def despread(chips, soft=False):
    """Recover symbols from a chip stream.

    ``chips`` must contain a whole number of 32-chip groups.  With
    ``soft=False`` the input is 0/1 hard decisions and each group is matched
    to the sequence with minimum Hamming distance.  With ``soft=True`` the
    input is real-valued (+ for chip 0, - for chip 1, matching the
    modulator's pulse polarity) and each group is matched by maximum
    correlation, which degrades more gracefully near sensitivity.

    Returns ``(symbols, distances)`` where ``distances[i]`` is the Hamming
    distance (hard) or negative correlation margin (soft) of the winning
    symbol — a per-symbol quality indicator.
    """
    chips = np.asarray(chips)
    if chips.size % 32 != 0:
        raise ValueError("chip stream length must be a multiple of 32")
    groups = chips.reshape(-1, 32)
    if groups.shape[0] == 0:
        return [], np.empty(0)

    if soft:
        scores = groups.astype(float) @ CHIP_MATRIX_ANTIPODAL.T.astype(float)
        symbols = np.argmax(scores, axis=1)
        quality = -scores[np.arange(len(symbols)), symbols]
    else:
        hard = (groups > 0).astype(np.int8)
        distances = (hard[:, None, :] != CHIP_MATRIX[None, :, :]).sum(axis=2)
        symbols = np.argmin(distances, axis=1)
        quality = distances[np.arange(len(symbols)), symbols]
    return [int(s) for s in symbols], quality


def min_intercode_distance():
    """Minimum pairwise Hamming distance of the 16 chip sequences.

    Documents the error-correction headroom the DSSS code provides; tests
    assert the well-known value for this code family.
    """
    best = 32
    for a in range(16):
        for b in range(a + 1, 16):
            d = sum(x != y for x, y in zip(CHIP_TABLE[a], CHIP_TABLE[b]))
            best = min(best, d)
    return best
