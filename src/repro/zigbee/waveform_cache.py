"""LRU cache of fully modulated frame waveforms.

Monte-Carlo sweeps, MAC retransmissions and fixed-pattern BER runs (the
paper's testbed sent fixed '01' payloads) modulate the same PPDU over
and over; only the channel and noise realizations differ per trial.
This cache memoizes the complex-baseband rendering keyed by
``(psdu bytes, nibble order, channel, sample_rate, tx_power_dbm)`` so a
repeated frame costs one dictionary lookup instead of a full DSSS
spread + pulse-shaping pass.

Entries are returned as **read-only** arrays (no defensive copy — every
consumer in the pipeline derives new arrays).  The cache is process
local and module level: forked parallel workers inherit a warm cache
but per-task pickles never carry it.  Sizing comes from the
``REPRO_WAVEFORM_CACHE_SIZE`` environment variable (entries; ``0``
disables caching entirely).
"""

import os
from collections import OrderedDict

import numpy as np


def _default_size():
    try:
        return max(0, int(os.environ.get("REPRO_WAVEFORM_CACHE_SIZE", "64")))
    except ValueError:
        return 64


class LruWaveformCache:
    """A small LRU mapping of hashable keys to read-only numpy arrays."""

    def __init__(self, maxsize=None):
        self.maxsize = _default_size() if maxsize is None else max(0, int(maxsize))
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """The cached waveform for ``key``, or ``None`` (counts a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, waveform):
        """Store ``waveform`` (made read-only in place) under ``key``."""
        if self.maxsize == 0:
            return waveform
        waveform = np.asarray(waveform)
        waveform.setflags(write=False)
        self._entries[key] = waveform
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return waveform

    def get_or_compute(self, key, compute):
        """Cached value for ``key``, computing and storing it on a miss."""
        cached = self.get(key)
        if cached is not None:
            return cached
        return self.put(key, compute())

    def clear(self):
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def cache_info(self):
        """``{"hits", "misses", "size", "maxsize"}`` snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }


#: Process-wide cache of modulated frames, shared by all transmitters.
FRAME_WAVEFORM_CACHE = LruWaveformCache()
