"""Minimal 802.15.4 MAC data-frame codec.

Implements the subset a SymBee sender actually uses: a data frame with
short (16-bit) addressing, a sequence number, a payload, and the FCS.  The
MPDU layout is::

    | FCF (2) | seq (1) | dest PAN (2) | dest addr (2) | src addr (2)
    | payload (n) | FCS (2) |

so the fixed MAC overhead is 11 bytes, leaving 116 payload bytes inside
the 127-byte PSDU.  The paper's "maximum payload of 127" refers to the
PSDU; see DESIGN.md Section 2 for how the SymBee frame budget is split.
"""

import struct
from dataclasses import dataclass, field

from repro.constants import ZIGBEE_MAX_PSDU
from repro.zigbee.crc import append_fcs, check_fcs

#: Frame Control Field for a data frame, short addressing both ends,
#: intra-PAN. Bits: type=001 (data), PAN-ID compression=1,
#: dest mode=10 (short), src mode=10 (short), 2003 frame version.
FCF_DATA_SHORT = 0x8841

#: Fixed MPDU overhead: FCF + seq + dest PAN + dest + src + FCS.
MAC_OVERHEAD_BYTES = 11

#: Largest MAC payload that fits the 127-byte PSDU.
MAX_MAC_PAYLOAD = ZIGBEE_MAX_PSDU - MAC_OVERHEAD_BYTES

#: Conventional broadcast short address.
BROADCAST_ADDRESS = 0xFFFF


@dataclass
class MacFrame:
    """An 802.15.4 data frame with short addressing."""

    payload: bytes
    sequence: int = 0
    pan_id: int = 0x22B8
    destination: int = BROADCAST_ADDRESS
    #: Default short address chosen so the header bytes adjacent to the
    #: payload (source address, transmitted low byte first) contain no
    #: 0x00/0xFF/SymBee-codeword octets: symbol pairs like (0,0) fold
    #: into weak bit-0 mimics right before the SymBee preamble and can
    #: ghost the preamble capture (see repro.core.preamble).  0x2B4D
    #: puts symbols (D,4) and (B,2) on air there instead.
    source: int = 0x2B4D
    frame_control: int = field(default=FCF_DATA_SHORT)

    def __post_init__(self):
        self.payload = bytes(self.payload)
        if len(self.payload) > MAX_MAC_PAYLOAD:
            raise ValueError(
                f"MAC payload of {len(self.payload)} bytes exceeds "
                f"{MAX_MAC_PAYLOAD}"
            )
        if not 0 <= self.sequence <= 0xFF:
            raise ValueError("sequence must fit one byte")
        for name in ("pan_id", "destination", "source", "frame_control"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} must fit two bytes")

    def to_psdu(self):
        """Serialize to an MPDU (PSDU bytes) including the FCS."""
        header = struct.pack(
            "<HBHHH",
            self.frame_control,
            self.sequence,
            self.pan_id,
            self.destination,
            self.source,
        )
        return append_fcs(header + self.payload)

    @classmethod
    def from_psdu(cls, psdu):
        """Parse and FCS-check an MPDU.  Raises ``ValueError`` when corrupt."""
        psdu = bytes(psdu)
        if len(psdu) < MAC_OVERHEAD_BYTES:
            raise ValueError("PSDU shorter than the minimum MPDU")
        if not check_fcs(psdu):
            raise ValueError("FCS check failed")
        frame_control, sequence, pan_id, destination, source = struct.unpack(
            "<HBHHH", psdu[:9]
        )
        return cls(
            payload=psdu[9:-2],
            sequence=sequence,
            pan_id=pan_id,
            destination=destination,
            source=source,
            frame_control=frame_control,
        )
