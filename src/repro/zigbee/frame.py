"""802.15.4 PHY framing: synchronization header, PHR, and PSDU.

A PPDU on air is::

    | preamble (4 x 0x00) | SFD (0xA7) | PHR: frame length (1 byte) | PSDU |

The SHR+PHR add 6 bytes (12 symbols, 192 us) in front of every packet,
which the throughput accounting in the experiments charges against SymBee
(the paper's 31.25 kbps is the raw symbol-level rate inside the payload).
"""

from dataclasses import dataclass

from repro.constants import ZIGBEE_MAX_PSDU
from repro.zigbee.symbols import bytes_to_symbols, symbols_to_bytes

#: Synchronization-header bytes: 4-byte preamble of zeros then the SFD.
PREAMBLE_BYTES = bytes(4)
SFD_BYTE = 0xA7
SHR_BYTES = PREAMBLE_BYTES + bytes([SFD_BYTE])

#: Data symbols composing the SHR in transmission order (low nibble first).
SHR_SYMBOLS = tuple(bytes_to_symbols(SHR_BYTES))

#: Bytes of PHY overhead per packet (SHR + PHR).
PHY_OVERHEAD_BYTES = len(SHR_BYTES) + 1


@dataclass(frozen=True)
class PhyFrame:
    """A parsed PPDU: the PSDU plus bookkeeping from the header."""

    psdu: bytes

    @property
    def length(self):
        return len(self.psdu)

    def __post_init__(self):
        if len(self.psdu) > ZIGBEE_MAX_PSDU:
            raise ValueError(
                f"PSDU of {len(self.psdu)} bytes exceeds the 802.15.4 "
                f"maximum of {ZIGBEE_MAX_PSDU}"
            )


def build_ppdu_symbols(psdu, nibble_order="low-first"):
    """Data symbols for a complete PPDU carrying ``psdu``.

    The SHR always uses standard nibble order (its bytes are symmetric
    anyway); ``nibble_order`` only affects the payload region, mirroring
    how a SymBee sender controls payload bytes but not the header.
    """
    frame = PhyFrame(bytes(psdu))
    header = bytes([frame.length])
    symbols = list(SHR_SYMBOLS)
    symbols += bytes_to_symbols(header)
    symbols += bytes_to_symbols(frame.psdu, nibble_order)
    return symbols


def parse_ppdu_symbols(symbols, nibble_order="low-first"):
    """Inverse of :func:`build_ppdu_symbols`.

    Validates the SHR and the PHR length field.  Raises ``ValueError`` on a
    malformed header; symbol errors inside the PSDU are the MAC layer's
    problem (FCS check).
    """
    symbols = list(symbols)
    n_shr = len(SHR_SYMBOLS)
    if len(symbols) < n_shr + 2:
        raise ValueError("symbol stream too short for a PPDU header")
    if tuple(symbols[:n_shr]) != SHR_SYMBOLS:
        raise ValueError("bad synchronization header")
    length = symbols_to_bytes(symbols[n_shr : n_shr + 2])[0]
    if length > ZIGBEE_MAX_PSDU:
        raise ValueError(f"PHR length {length} exceeds maximum PSDU")
    start = n_shr + 2
    end = start + 2 * length
    if len(symbols) < end:
        raise ValueError(
            f"symbol stream truncated: PHR promises {length} bytes"
        )
    psdu = symbols_to_bytes(symbols[start:end], nibble_order)
    return PhyFrame(psdu)


def ppdu_duration_seconds(psdu_length):
    """On-air duration of a PPDU with the given PSDU length.

    Each byte is 2 symbols of 16 us.  The paper's "minimal ZigBee packet of
    576 us (i.e., 18 bytes)" corresponds to psdu_length = 12 plus the
    6 header bytes.
    """
    from repro.constants import ZIGBEE_SYMBOL_DURATION

    total_bytes = PHY_OVERHEAD_BYTES + psdu_length
    return total_bytes * 2 * ZIGBEE_SYMBOL_DURATION
