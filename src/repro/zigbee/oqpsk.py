"""O-QPSK half-sine modulation — the ZigBee waveform WiFi cross-observes.

Modulation follows the paper's Figure 2 exactly:

* chips are split into even (in-phase) and odd (quadrature) streams;
* chip value 0 becomes a positive half-sine pulse, 1 a negative one
  (Section III-B step (ii));
* each pulse lasts 1 us (two chip periods) and the quadrature branch is
  delayed by half a pulse (0.5 us), so consecutive same-branch pulses abut
  seamlessly — which is what lets special chip patterns form the long
  continuous sinusoids SymBee rides on.

The modulator renders directly at the requested sample rate, which for the
20/40 Msps WiFi rates is an exact integer number of samples per pulse, so
no resampling error enters the cross-observability analysis.
"""

import numpy as np

from repro.constants import ZIGBEE_PULSE_DURATION
from repro.zigbee.symbols import bytes_to_symbols


class OqpskModulator:
    """Chip/symbol/byte stream to complex-baseband O-QPSK waveform."""

    def __init__(self, sample_rate):
        samples_per_pulse = sample_rate * ZIGBEE_PULSE_DURATION
        if abs(samples_per_pulse - round(samples_per_pulse)) > 1e-9:
            raise ValueError(
                "sample_rate must render an integer number of samples per "
                f"1 us pulse; got {sample_rate} Hz"
            )
        self.sample_rate = float(sample_rate)
        self.samples_per_pulse = int(round(samples_per_pulse))
        if self.samples_per_pulse % 2 != 0:
            raise ValueError("samples per pulse must be even for the half-chip offset")
        #: Samples of delay applied to the quadrature branch (0.5 us).
        self.quadrature_offset = self.samples_per_pulse // 2
        t = np.arange(self.samples_per_pulse) / self.samples_per_pulse
        #: One half-sine pulse, peak amplitude 1.
        self.pulse = np.sin(np.pi * t)
        # Lazily built 16-entry symbol -> baseband segment table; see
        # _symbol_segments().
        self._segments = None

    def waveform_length(self, n_chips):
        """Output sample count for ``n_chips`` chips (must be even)."""
        if n_chips % 2 != 0:
            raise ValueError("chip count must be even (I/Q pairs)")
        n_pairs = n_chips // 2
        if n_pairs == 0:
            return 0
        return n_pairs * self.samples_per_pulse + self.quadrature_offset

    def modulate_chips(self, chips):
        """Render a 0/1 chip stream to a complex baseband waveform."""
        chips = np.asarray(chips, dtype=np.int8)
        if chips.size % 2 != 0:
            raise ValueError("chip count must be even (I/Q pairs)")
        n_pairs = chips.size // 2
        if n_pairs == 0:
            return np.empty(0, dtype=np.complex128)
        # Chip 0 -> +1 pulse, chip 1 -> -1 pulse.
        amplitudes = np.where(chips == 0, 1.0, -1.0)
        even, odd = amplitudes[0::2], amplitudes[1::2]

        spp, off = self.samples_per_pulse, self.quadrature_offset
        total = n_pairs * spp + off
        in_phase = np.zeros(total)
        quadrature = np.zeros(total)
        in_phase[: n_pairs * spp] = (even[:, None] * self.pulse[None, :]).ravel()
        quadrature[off : off + n_pairs * spp] = (
            odd[:, None] * self.pulse[None, :]
        ).ravel()
        return in_phase + 1j * quadrature

    def _symbol_segments(self):
        """Precomputed per-symbol baseband segments (16 x waveform_length(32)).

        Segment ``s`` is exactly ``modulate_chips(CHIP_MATRIX[s])``: 16
        in-phase pulses filling a ``16 * samples_per_pulse`` block plus
        the quadrature tail that spills ``quadrature_offset`` samples
        into the next symbol's block.  Because the spilled tail is purely
        quadrature and the next segment's head is purely in-phase there,
        overlap-adding segments at a ``16 * samples_per_pulse`` stride
        reproduces full-stream modulation sample-exactly.
        """
        if self._segments is None:
            from repro.zigbee.symbols import CHIP_MATRIX

            table = np.stack([self.modulate_chips(CHIP_MATRIX[s]) for s in range(16)])
            seg_len = 16 * self.samples_per_pulse
            # Split into contiguous (main, tail) halves so the per-frame
            # gather is a straight block copy.
            main = np.ascontiguousarray(table[:, :seg_len])
            tail = np.ascontiguousarray(table[:, seg_len:])
            main.setflags(write=False)
            tail.setflags(write=False)
            self._segments = (main, tail)
        return self._segments

    def modulate_symbols(self, symbols):
        """Spread 4-bit data symbols and render the waveform.

        Renders via the per-symbol segment table (one gather plus an
        overlap-add of the quadrature tails) instead of re-spreading and
        pulse-shaping every chip; the output is sample-identical to
        ``modulate_chips(spread(symbols))``.
        """
        symbols = np.asarray(list(symbols), dtype=np.intp)
        if symbols.size == 0:
            return np.empty(0, dtype=np.complex128)
        if symbols.min() < 0 or symbols.max() > 0xF:
            bad = symbols[(symbols < 0) | (symbols > 0xF)][0]
            raise ValueError(f"symbol out of range: {bad}")
        main, tail = self._symbol_segments()
        seg_len = 16 * self.samples_per_pulse
        off = self.quadrature_offset
        n = symbols.size
        out = np.empty(n * seg_len + off, dtype=np.complex128)
        out[: n * seg_len].reshape(n, seg_len)[:] = main[symbols]
        out[n * seg_len :] = 0.0
        # Quadrature tails overlap the head of the following block (the
        # head's quadrature part is zero there, so this is a pure add).
        positions = seg_len * np.arange(1, n + 1)[:, None] + np.arange(off)[None, :]
        out[positions] += tail[symbols]
        return out

    def modulate_bytes(self, payload, nibble_order="low-first"):
        """Render a byte string (low nibble transmitted first by default)."""
        return self.modulate_symbols(bytes_to_symbols(payload, nibble_order))


class OqpskDemodulator:
    """Coherent matched-filter O-QPSK demodulator.

    Used for the ZigBee-side reception path (cross-technology broadcast,
    baseline packet delivery); the WiFi side never demodulates ZigBee —
    it only observes phase differences.
    """

    def __init__(self, sample_rate):
        self._mod = OqpskModulator(sample_rate)

    @property
    def sample_rate(self):
        return self._mod.sample_rate

    def soft_chips(self, waveform, n_chips):
        """Matched-filter soft chip values (positive means chip 0).

        ``waveform`` must be time-aligned so its first sample is the start
        of the first in-phase pulse.
        """
        if n_chips % 2 != 0:
            raise ValueError("chip count must be even")
        spp, off = self._mod.samples_per_pulse, self._mod.quadrature_offset
        n_pairs = n_chips // 2
        needed = self._mod.waveform_length(n_chips)
        waveform = np.asarray(waveform)
        if waveform.size < needed:
            raise ValueError(f"waveform too short: need {needed}, got {waveform.size}")

        pulse = self._mod.pulse
        i_windows = waveform.real[: n_pairs * spp].reshape(n_pairs, spp)
        q_flat = waveform.imag[off : off + n_pairs * spp]
        q_windows = q_flat.reshape(n_pairs, spp)
        even_soft = i_windows @ pulse
        odd_soft = q_windows @ pulse
        soft = np.empty(n_chips)
        soft[0::2] = even_soft
        soft[1::2] = odd_soft
        return soft

    def demodulate_symbols(self, waveform, n_symbols, carrier_phase=0.0):
        """Recover ``n_symbols`` data symbols from an aligned waveform.

        ``carrier_phase`` de-rotates a residual constant phase before
        matched filtering (the receiver's carrier recovery output).
        Returns ``(symbols, quality)`` as from
        :func:`repro.zigbee.dsss.despread`.
        """
        from repro.zigbee.dsss import despread

        waveform = np.asarray(waveform)
        if carrier_phase:
            waveform = waveform * np.exp(-1j * carrier_phase)
        soft = self.soft_chips(waveform, n_symbols * 32)
        return despread(soft, soft=True)
