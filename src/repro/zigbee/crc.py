"""CRC-16 for the 802.15.4 frame check sequence.

The standard specifies the ITU-T CRC-16 with generator
``x^16 + x^12 + x^5 + 1`` (0x1021), initial value 0, processing each octet
least-significant bit first, and transmitting the FCS low byte first.
This is the "KERMIT"-style reflected CRC.
"""


def crc16_itut(data, initial=0x0000):
    """Compute the 802.15.4 FCS over ``data`` (bytes-like)."""
    crc = initial
    for byte in bytes(data):
        crc ^= byte
        for _ in range(8):
            if crc & 0x0001:
                crc = (crc >> 1) ^ 0x8408  # 0x1021 bit-reflected
            else:
                crc >>= 1
    return crc & 0xFFFF


def append_fcs(data):
    """Return ``data`` with its 2-byte FCS appended (low byte first)."""
    crc = crc16_itut(data)
    return bytes(data) + bytes((crc & 0xFF, crc >> 8))


def check_fcs(frame):
    """True iff the trailing 2 bytes of ``frame`` are a valid FCS.

    Frames shorter than the FCS itself are invalid by definition.
    """
    frame = bytes(frame)
    if len(frame) < 2:
        return False
    body, fcs = frame[:-2], frame[-2:]
    expected = crc16_itut(body)
    return fcs == bytes((expected & 0xFF, expected >> 8))
