"""Unslotted CSMA-CA channel access (IEEE 802.15.4 Section 6.2.5.1).

The paper's convergecast motivation implies many sensors sharing one
channel; this module provides the standard contention algorithm the
multi-node simulator (:mod:`repro.network`) runs under.

Algorithm (unslotted variant): for each attempt, wait a random backoff of
``random(0 .. 2^BE - 1)`` unit backoff periods (20 symbols = 320 us),
then perform CCA; if the channel is busy, increment BE (capped at
``max_be``) and retry, giving up after ``max_backoffs`` busy CCAs.
"""

from dataclasses import dataclass

from repro.constants import ZIGBEE_SYMBOL_DURATION

#: One unit backoff period: 20 symbols = 320 us.
UNIT_BACKOFF_S = 20 * ZIGBEE_SYMBOL_DURATION

#: Duration of the CCA measurement: 8 symbols = 128 us.
CCA_DURATION_S = 8 * ZIGBEE_SYMBOL_DURATION


@dataclass(frozen=True)
class CsmaOutcome:
    """Result of one channel-access attempt."""

    success: bool
    tx_time_s: float            # when transmission may start (if success)
    backoffs_used: int
    time_spent_s: float         # total time from invocation to decision


class CsmaCa:
    """Unslotted 802.15.4 CSMA-CA with standard default parameters."""

    def __init__(self, min_be=3, max_be=5, max_backoffs=4):
        if not 0 <= min_be <= max_be:
            raise ValueError("need 0 <= min_be <= max_be")
        if max_backoffs < 0:
            raise ValueError("max_backoffs must be nonnegative")
        self.min_be = int(min_be)
        self.max_be = int(max_be)
        self.max_backoffs = int(max_backoffs)

    def attempt(self, now_s, channel_busy, rng):
        """Run the backoff/CCA loop starting at ``now_s``.

        ``channel_busy(start_s, duration_s)`` must report whether the
        medium is occupied at any point in the window — the simulator
        supplies it from the committed transmission timeline.

        Returns a :class:`CsmaOutcome`; on failure ``tx_time_s`` is the
        time at which the algorithm gave up.
        """
        be = self.min_be
        clock = float(now_s)
        for backoff_index in range(self.max_backoffs + 1):
            slots = int(rng.integers(0, 2**be))
            clock += slots * UNIT_BACKOFF_S
            if not channel_busy(clock, CCA_DURATION_S):
                clock += CCA_DURATION_S
                return CsmaOutcome(
                    success=True,
                    tx_time_s=clock,
                    backoffs_used=backoff_index,
                    time_spent_s=clock - now_s,
                )
            clock += CCA_DURATION_S
            be = min(be + 1, self.max_be)
        return CsmaOutcome(
            success=False,
            tx_time_s=clock,
            backoffs_used=self.max_backoffs + 1,
            time_spent_s=clock - now_s,
        )
