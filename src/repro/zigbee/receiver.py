"""Coherent ZigBee receiver.

Used by the cross-technology-broadcast path (paper Section VI-A: the same
SymBee packet is an ordinary ZigBee packet, so any ZigBee node decodes it
at the application layer) and by the baseline simulators to establish
packet delivery.  Detection is a matched filter against the known SHR
waveform; carrier phase is recovered from the correlation peak.
"""

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from repro.constants import WIFI_SAMPLE_RATE_20MHZ, ZIGBEE_MAX_PSDU
from repro.zigbee.frame import SHR_SYMBOLS
from repro.zigbee.mac import MacFrame
from repro.zigbee.oqpsk import OqpskDemodulator, OqpskModulator
from repro.zigbee.symbols import symbols_to_bytes


@dataclass
class ZigBeeReception:
    """Outcome of one receive attempt."""

    frame: "MacFrame | None"
    psdu: bytes
    start_index: int
    carrier_phase: float
    fcs_ok: bool
    symbol_quality: "np.ndarray | None" = None


class ZigBeeReceiver:
    """SHR-synchronized matched-filter receiver."""

    def __init__(self, sample_rate=WIFI_SAMPLE_RATE_20MHZ, detection_threshold=0.5):
        self.demodulator = OqpskDemodulator(sample_rate)
        self._mod = OqpskModulator(sample_rate)
        self._shr_reference = self._mod.modulate_symbols(list(SHR_SYMBOLS))
        self._shr_energy = float(np.sum(np.abs(self._shr_reference) ** 2))
        #: Normalized correlation needed to declare a sync (0..1).
        self.detection_threshold = detection_threshold

    @property
    def sample_rate(self):
        return self.demodulator.sample_rate

    def synchronize(self, waveform):
        """Locate the SHR.  Returns ``(start_index, carrier_phase)`` or ``None``.

        The matched-filter output is normalized by the local received
        energy so the threshold is amplitude-independent.
        """
        waveform = np.asarray(waveform)
        ref = self._shr_reference
        if waveform.size < ref.size:
            return None
        corr = fftconvolve(waveform, np.conj(ref[::-1]), mode="valid")
        local_energy = fftconvolve(
            np.abs(waveform) ** 2, np.ones(ref.size), mode="valid"
        )
        denom = np.sqrt(np.maximum(local_energy, 1e-30) * self._shr_energy)
        metric = np.abs(corr) / denom
        peak = int(np.argmax(metric))
        if metric[peak] < self.detection_threshold:
            return None
        return peak, float(np.angle(corr[peak]))

    def receive(self, waveform):
        """Full receive chain: sync, PHR, PSDU, FCS check.

        Returns a :class:`ZigBeeReception`; ``frame`` is ``None`` unless the
        FCS verifies and the MAC header parses.
        """
        sync = self.synchronize(waveform)
        if sync is None:
            return None
        start, phase = sync
        waveform = np.asarray(waveform)

        shr_len = self._shr_reference.size - self._mod.quadrature_offset
        phr_start = start + shr_len
        spp = self._mod.samples_per_pulse

        # PHR: one byte = 2 symbols = 32 pulse slots.
        phr_span = 32 * spp + self._mod.quadrature_offset
        if waveform.size < phr_start + phr_span:
            return None
        phr_symbols, _ = self.demodulator.demodulate_symbols(
            waveform[phr_start:], 2, carrier_phase=phase
        )
        length = symbols_to_bytes(phr_symbols)[0]
        if not 0 < length <= ZIGBEE_MAX_PSDU:
            return None

        psdu_start = phr_start + 32 * spp
        psdu_span = length * 32 * spp + self._mod.quadrature_offset
        if waveform.size < psdu_start + psdu_span:
            return None
        psdu_symbols, quality = self.demodulator.demodulate_symbols(
            waveform[psdu_start:], length * 2, carrier_phase=phase
        )
        psdu = symbols_to_bytes(psdu_symbols)

        try:
            frame = MacFrame.from_psdu(psdu)
            fcs_ok = True
        except ValueError:
            frame, fcs_ok = None, False
        return ZigBeeReception(
            frame=frame,
            psdu=psdu,
            start_index=start,
            carrier_phase=phase,
            fcs_ok=fcs_ok,
            symbol_quality=quality,
        )
