"""End-to-end ZigBee transmitter: payload bytes to complex baseband.

The output waveform is centred at the ZigBee channel frequency; carrying
it to a WiFi receiver's baseband (including the centre-frequency offset)
is the front-end's job (:mod:`repro.wifi.front_end`).
"""

from functools import lru_cache

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.dsp.signal_ops import dbm_to_watts, scale_to_power, signal_power
from repro.zigbee.frame import build_ppdu_symbols
from repro.zigbee.mac import MacFrame
from repro.zigbee.oqpsk import OqpskModulator
from repro.zigbee.waveform_cache import FRAME_WAVEFORM_CACHE


@lru_cache(maxsize=256)
def _ppdu_symbol_tuple(psdu, nibble_order):
    """Cached PPDU symbol expansion (the per-frame chip-sequence input).

    Keyed on the immutable PSDU bytes; retransmissions and fixed-payload
    sweeps skip the per-byte nibble unpacking entirely.
    """
    return tuple(build_ppdu_symbols(psdu, nibble_order=nibble_order))


class ZigBeeTransmitter:
    """Builds and modulates complete 802.15.4 packets.

    Power convention: the emitted waveform's mean power equals the transmit
    power in *watts* (so 0 dBm -> 1 mW -> mean |x|^2 = 1e-3).  Channel
    models then subtract path loss in dB to get received power, and the
    noise floor is computed in the same absolute units.
    """

    def __init__(
        self,
        channel=13,
        tx_power_dbm=0.0,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        nibble_order="low-first",
    ):
        from repro.zigbee.channels import zigbee_channel_frequency

        self.channel = channel
        self.center_frequency = zigbee_channel_frequency(channel)
        self.tx_power_dbm = float(tx_power_dbm)
        self.nibble_order = nibble_order
        self.modulator = OqpskModulator(sample_rate)
        self._sequence = 0

    @property
    def sample_rate(self):
        return self.modulator.sample_rate

    def next_sequence(self):
        """Monotonically increasing 8-bit MAC sequence number."""
        seq = self._sequence
        self._sequence = (self._sequence + 1) & 0xFF
        return seq

    def build_frame(self, payload, **mac_fields):
        """Wrap ``payload`` in a MAC data frame with the next sequence."""
        mac_fields.setdefault("sequence", self.next_sequence())
        return MacFrame(payload=payload, **mac_fields)

    def waveform_for_psdu(self, psdu):
        """Modulate a raw PSDU (PPDU framing added here).

        Fully modulated frames are memoized in the process-wide
        :data:`repro.zigbee.waveform_cache.FRAME_WAVEFORM_CACHE`; the
        returned array is **read-only** and must not be mutated in
        place (no pipeline stage does — they all derive new arrays).
        """
        psdu = bytes(psdu)
        key = (
            psdu,
            self.nibble_order,
            self.channel,
            self.modulator.sample_rate,
            self.tx_power_dbm,
        )
        return FRAME_WAVEFORM_CACHE.get_or_compute(key, lambda: self._render(psdu))

    def _render(self, psdu):
        """Uncached PSDU modulation (the cache's compute path)."""
        symbols = _ppdu_symbol_tuple(psdu, self.nibble_order)
        waveform = self.modulator.modulate_symbols(symbols)
        p = signal_power(waveform)
        if p == 0.0:
            return scale_to_power(waveform, dbm_to_watts(self.tx_power_dbm))
        # scale_to_power, but in place on the freshly rendered buffer.
        waveform *= np.sqrt(dbm_to_watts(self.tx_power_dbm) / p)
        return waveform

    def transmit(self, payload, **mac_fields):
        """Payload bytes -> (MacFrame, complex baseband waveform)."""
        frame = self.build_frame(payload, **mac_fields)
        return frame, self.waveform_for_psdu(frame.to_psdu())

    def transmit_frame(self, frame):
        """Modulate an already-built :class:`MacFrame`."""
        return self.waveform_for_psdu(frame.to_psdu())

    def packet_duration(self, payload_length):
        """On-air seconds for a packet with ``payload_length`` MAC payload."""
        from repro.zigbee.frame import ppdu_duration_seconds
        from repro.zigbee.mac import MAC_OVERHEAD_BYTES

        return ppdu_duration_seconds(payload_length + MAC_OVERHEAD_BYTES)

    @staticmethod
    def silence(n_samples):
        """Convenience: a block of idle channel time."""
        return np.zeros(int(n_samples), dtype=np.complex128)
