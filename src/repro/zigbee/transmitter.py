"""End-to-end ZigBee transmitter: payload bytes to complex baseband.

The output waveform is centred at the ZigBee channel frequency; carrying
it to a WiFi receiver's baseband (including the centre-frequency offset)
is the front-end's job (:mod:`repro.wifi.front_end`).
"""

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.dsp.signal_ops import dbm_to_watts, scale_to_power
from repro.zigbee.frame import build_ppdu_symbols
from repro.zigbee.mac import MacFrame
from repro.zigbee.oqpsk import OqpskModulator


class ZigBeeTransmitter:
    """Builds and modulates complete 802.15.4 packets.

    Power convention: the emitted waveform's mean power equals the transmit
    power in *watts* (so 0 dBm -> 1 mW -> mean |x|^2 = 1e-3).  Channel
    models then subtract path loss in dB to get received power, and the
    noise floor is computed in the same absolute units.
    """

    def __init__(
        self,
        channel=13,
        tx_power_dbm=0.0,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        nibble_order="low-first",
    ):
        from repro.zigbee.channels import zigbee_channel_frequency

        self.channel = channel
        self.center_frequency = zigbee_channel_frequency(channel)
        self.tx_power_dbm = float(tx_power_dbm)
        self.nibble_order = nibble_order
        self.modulator = OqpskModulator(sample_rate)
        self._sequence = 0

    @property
    def sample_rate(self):
        return self.modulator.sample_rate

    def next_sequence(self):
        """Monotonically increasing 8-bit MAC sequence number."""
        seq = self._sequence
        self._sequence = (self._sequence + 1) & 0xFF
        return seq

    def build_frame(self, payload, **mac_fields):
        """Wrap ``payload`` in a MAC data frame with the next sequence."""
        mac_fields.setdefault("sequence", self.next_sequence())
        return MacFrame(payload=payload, **mac_fields)

    def waveform_for_psdu(self, psdu):
        """Modulate a raw PSDU (PPDU framing added here)."""
        symbols = build_ppdu_symbols(psdu, nibble_order=self.nibble_order)
        waveform = self.modulator.modulate_symbols(symbols)
        return scale_to_power(waveform, dbm_to_watts(self.tx_power_dbm))

    def transmit(self, payload, **mac_fields):
        """Payload bytes -> (MacFrame, complex baseband waveform)."""
        frame = self.build_frame(payload, **mac_fields)
        return frame, self.waveform_for_psdu(frame.to_psdu())

    def transmit_frame(self, frame):
        """Modulate an already-built :class:`MacFrame`."""
        return self.waveform_for_psdu(frame.to_psdu())

    def packet_duration(self, payload_length):
        """On-air seconds for a packet with ``payload_length`` MAC payload."""
        from repro.zigbee.frame import ppdu_duration_seconds
        from repro.zigbee.mac import MAC_OVERHEAD_BYTES

        return ppdu_duration_seconds(payload_length + MAC_OVERHEAD_BYTES)

    @staticmethod
    def silence(n_samples):
        """Convenience: a block of idle channel time."""
        return np.zeros(int(n_samples), dtype=np.complex128)
