"""Physical-layer constants shared across the SymBee reproduction.

All durations are in seconds, frequencies in Hz, and powers in dBm unless a
name says otherwise.  The values are fixed by the IEEE 802.15.4 (2.4 GHz
O-QPSK PHY) and IEEE 802.11 standards, plus the SymBee paper's operating
points (Sections IV-C, V, VI-B).
"""

import math

# --- 802.15.4 O-QPSK PHY (2.4 GHz band) ------------------------------------

#: Aggregate chip rate of the 2.4 GHz O-QPSK PHY.
ZIGBEE_CHIP_RATE = 2_000_000.0

#: Chip period at the aggregate chip rate (0.5 us).
ZIGBEE_CHIP_PERIOD = 1.0 / ZIGBEE_CHIP_RATE

#: Duration of one half-sine pulse on the I or Q branch (1 us).  Even chips
#: feed the in-phase branch and odd chips the quadrature branch, so each
#: branch runs at 1 Mchip/s.
ZIGBEE_PULSE_DURATION = 2.0 * ZIGBEE_CHIP_PERIOD

#: Chips per data symbol (DSSS spreading factor).
ZIGBEE_CHIPS_PER_SYMBOL = 32

#: Bits carried by one ZigBee symbol.
ZIGBEE_BITS_PER_SYMBOL = 4

#: Duration of one ZigBee symbol: 32 chips at 2 Mchip/s = 16 us.
ZIGBEE_SYMBOL_DURATION = ZIGBEE_CHIPS_PER_SYMBOL * ZIGBEE_CHIP_PERIOD

#: ZigBee symbol rate (62.5 ksym/s).
ZIGBEE_SYMBOL_RATE = 1.0 / ZIGBEE_SYMBOL_DURATION

#: ZigBee PHY bit rate (250 kbps).
ZIGBEE_BIT_RATE = ZIGBEE_SYMBOL_RATE * ZIGBEE_BITS_PER_SYMBOL

#: Occupied bandwidth of a ZigBee channel.
ZIGBEE_BANDWIDTH = 2_000_000.0

#: Channel spacing in the 2.4 GHz band.
ZIGBEE_CHANNEL_SPACING = 5_000_000.0

#: Maximum MAC payload accepted by the PHY (aMaxPHYPacketSize).
ZIGBEE_MAX_PSDU = 127

# --- 802.11 (WiFi) ----------------------------------------------------------

#: Baseband sample rate of a 20 MHz WiFi receiver (Nyquist rate).
WIFI_SAMPLE_RATE_20MHZ = 20_000_000.0

#: Baseband sample rate of a 40 MHz (802.11n) WiFi receiver.
WIFI_SAMPLE_RATE_40MHZ = 40_000_000.0

#: Autocorrelation lag of the idle-listening module: the WiFi Short Training
#: Sequence repeats every 0.8 us, i.e. 16 samples at 20 Msps.
WIFI_STS_PERIOD_SECONDS = 0.8e-6

#: Lag in samples at 20 Msps.
WIFI_AUTOCORR_LAG_20MHZ = 16

#: Lag in samples at 40 Msps.
WIFI_AUTOCORR_LAG_40MHZ = 32

#: Total duration of the legacy Short Training Field (10 repetitions).
WIFI_STF_DURATION = 8e-6

# --- SymBee operating points (paper Sections IV-C, V, VI-B) -----------------

#: ZigBee symbols per SymBee bit: one payload byte = two symbols.
SYMBEE_SYMBOLS_PER_BIT = 2

#: Duration of one SymBee bit (two ZigBee symbols = 32 us).
SYMBEE_BIT_DURATION = SYMBEE_SYMBOLS_PER_BIT * ZIGBEE_SYMBOL_DURATION

#: Raw SymBee bit rate: 1 bit / 32 us = 31.25 kbps (paper Section VII).
SYMBEE_RAW_BIT_RATE = 1.0 / SYMBEE_BIT_DURATION

#: Samples spanned by one SymBee bit at a 20 Msps WiFi receiver.
SYMBEE_BIT_PERIOD_20MHZ = 640

#: Samples spanned by one SymBee bit at a 40 Msps WiFi receiver.
SYMBEE_BIT_PERIOD_40MHZ = 1280

#: Length of the stable-phase plateau at 20 Msps (4.2 us, paper Section IV-C).
SYMBEE_STABLE_WINDOW_20MHZ = 84

#: Length of the stable-phase plateau at 40 Msps (paper Section VI-B).
SYMBEE_STABLE_WINDOW_40MHZ = 168

#: Magnitude of the stable phase difference produced by (6,7)/(E,F).
SYMBEE_STABLE_PHASE = 4.0 * math.pi / 5.0

#: Default error-tolerance threshold for unsynchronized decoding (paper
#: Section IV-C: "in our experiment tau is set to be 10").
SYMBEE_DEFAULT_TAU = 10

#: Majority-voting threshold for synchronized decoding (paper Section V).
SYMBEE_TAU_SYNC = 42

#: Number of repeated bit-0s forming the SymBee preamble (paper Section V).
SYMBEE_PREAMBLE_BITS = 4

#: ZigBee symbol pair conveying SymBee bit 1 (stable phase +4pi/5).
SYMBEE_BIT1_SYMBOLS = (0x6, 0x7)

#: ZigBee symbol pair conveying SymBee bit 0 (stable phase -4pi/5).
SYMBEE_BIT0_SYMBOLS = (0xE, 0xF)

# --- Radio link defaults ----------------------------------------------------

#: Thermal noise power spectral density at 290 K.
THERMAL_NOISE_DBM_PER_HZ = -174.0

#: Default receiver noise figure in dB.
DEFAULT_NOISE_FIGURE_DB = 6.0

#: Default / maximum ZigBee transmit power (paper uses 0 dBm).
DEFAULT_TX_POWER_DBM = 0.0

#: Speed of light, for Doppler computations.
SPEED_OF_LIGHT = 299_792_458.0

#: Centre of the 2.4 GHz ISM band, used for free-space reference loss.
ISM_BAND_CENTER_HZ = 2.44e9
