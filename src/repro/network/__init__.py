"""Multi-node convergecast networking on top of the SymBee PHY.

The paper motivates SymBee with upstream IoT traffic ("convergecast
which takes majority portion of IoT traffic").  This package provides
the substrate for evaluating that setting: sensor nodes with queues and
CSMA-CA contention, a shared-channel timeline with collision detection,
and per-transmission delivery decided by the full PHY link simulation.
"""

from repro.network.simulator import (
    ConvergecastNetwork,
    NetworkResult,
    NodeConfig,
    TransmissionRecord,
)
from repro.network.traffic import (
    ScheduledTransmission,
    StreamSender,
    StreamTraffic,
)
from repro.transport.multisession import MultiSenderResult, MultiSenderTransport

__all__ = [
    "ConvergecastNetwork",
    "MultiSenderResult",
    "MultiSenderTransport",
    "NetworkResult",
    "NodeConfig",
    "ScheduledTransmission",
    "StreamSender",
    "StreamTraffic",
    "TransmissionRecord",
]
