"""Multi-sender traffic synthesis for the streaming receive engine.

:class:`StreamTraffic` renders what a continuously listening WiFi
receiver actually sees: N SymBee senders, each generating readings as a
Poisson process, their 802.15.4 packets modulated at their own ZigBee
channel frequencies, summed into one baseband capture by the shared
:class:`repro.wifi.front_end.WifiFrontEnd` (with its noise floor), then
sliced into fixed-size blocks.  Senders on *different* ZigBee channels
may overlap in time — that concurrency is exactly what the engine's
demux mode decodes; senders sharing a channel are serialized on a
per-channel timeline (polite CSMA), because co-channel overlap is a
collision no receiver could untangle.

The schedule doubles as ground truth: every
:class:`ScheduledTransmission` records the sender, sequence, data bits
and sample offsets, so tests and the ``repro listen`` CLI can score
decoded frames against what was actually sent.

Seeded-RNG contract: this module draws randomness *only* from the
``rng`` generator passed explicitly to :meth:`StreamTraffic.schedule` /
:meth:`StreamTraffic.capture` — arrival gaps, payload bits, channel
fading and front-end noise all share that one stream, and nothing here
touches the global ``numpy.random`` state.  Two captures from
identically seeded generators are sample-identical regardless of what
any other code seeded globally (regression-tested in
``tests/test_network.py``).
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_TX_POWER_DBM, WIFI_SAMPLE_RATE_20MHZ
from repro.core.encoder import SymBeeEncoder
from repro.core.frame import build_frame_bits
from repro.wifi.front_end import WifiFrontEnd
from repro.zigbee.transmitter import ZigBeeTransmitter


@dataclass(frozen=True)
class StreamSender:
    """One SymBee sensor feeding the stream.

    By default each transmission carries ``data_bits`` random bits in a
    DATA frame.  ``frames`` overrides that with a scripted sequence of
    ``(data_bits, frame_type, sequence)`` tuples — exactly what
    :func:`repro.transport.pdu.encode_fragment` returns, so transport
    fragments script directly — sent in order at the sender's arrival
    process; the sender falls silent once the script is exhausted.
    """

    sender_id: int
    zigbee_channel: int = 13
    reading_interval_s: float = 0.005
    data_bits: int = 16
    distance_m: float = 5.0
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    frames: tuple = ()


@dataclass(frozen=True)
class ScheduledTransmission:
    """Ground truth for one on-air SymBee frame."""

    sender_id: int
    zigbee_channel: int
    sequence: int
    start_sample: int
    n_samples: int
    data_bits: tuple
    frame_bits: tuple

    @property
    def end_sample(self):
        return self.start_sample + self.n_samples


class StreamTraffic:
    """Synthesizes a seeded multi-sender baseband stream + ground truth."""

    def __init__(
        self,
        senders,
        wifi_channel=1,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        duration_s=0.05,
        scenario=None,
        include_noise=True,
        lead_in_samples=2000,
        guard_samples=4096,
    ):
        self.senders = list(senders)
        if not self.senders:
            raise ValueError("need at least one sender")
        self.sample_rate = float(sample_rate)
        self.duration_s = float(duration_s)
        self.total_samples = int(round(self.duration_s * self.sample_rate))
        self.scenario = scenario
        self.include_noise = bool(include_noise)
        #: First allowed transmission start (receiver warm-up).
        self.lead_in_samples = int(lead_in_samples)
        #: Idle samples enforced between same-channel transmissions and
        #: before the capture's end, so scheduled frames decode whole.
        self.guard_samples = int(guard_samples)
        self.front_end = WifiFrontEnd(
            channel=wifi_channel, sample_rate=sample_rate
        )
        self.encoder = SymBeeEncoder()
        self._transmitters = {
            s.sender_id: ZigBeeTransmitter(
                channel=s.zigbee_channel,
                tx_power_dbm=s.tx_power_dbm,
                sample_rate=sample_rate,
            )
            for s in self.senders
        }

    # -- schedule -----------------------------------------------------------

    def schedule(self, rng):
        """Poisson arrivals per sender, serialized per ZigBee channel.

        Returns ``(transmissions, contributions)``: the ground-truth
        records and the ``(waveform, start, f_center)`` tuples the front
        end sums.  Arrivals whose frame would not fit (plus guard) before
        the capture ends are dropped — the stream simply ends mid-idle,
        never mid-frame.
        """
        arrivals = []
        for sender in self.senders:
            clock = self.lead_in_samples / self.sample_rate + float(
                rng.exponential(sender.reading_interval_s)
            )
            while clock < self.duration_s:
                arrivals.append((clock, sender))
                clock += float(rng.exponential(sender.reading_interval_s))
        arrivals.sort(key=lambda item: item[0])

        transmissions = []
        contributions = []
        channel_free_at = {}
        sequences = {}
        for clock, sender in arrivals:
            sequence = sequences.get(sender.sender_id, 0)
            if sender.frames:
                if sequence >= len(sender.frames):
                    continue  # script exhausted; sender is done
                data_bits, frame_type, frame_sequence = sender.frames[sequence]
                data_bits = tuple(int(b) for b in data_bits)
                frame_bits = tuple(
                    build_frame_bits(
                        list(data_bits),
                        sequence=int(frame_sequence) & 0xFF,
                        frame_type=int(frame_type),
                    )
                )
            else:
                data_bits = tuple(
                    int(b) for b in rng.integers(0, 2, sender.data_bits)
                )
                frame_bits = tuple(
                    build_frame_bits(list(data_bits), sequence=sequence & 0xFF)
                )
            payload = self.encoder.encode_message(frame_bits)
            transmitter = self._transmitters[sender.sender_id]
            frame = transmitter.build_frame(
                payload, sequence=sequence & 0xFF
            )
            waveform = transmitter.transmit_frame(frame)
            if self.scenario is not None:
                link = self.scenario.link(
                    sender.distance_m, sample_rate=self.sample_rate
                )
                waveform = link.apply(waveform, rng)

            start = int(round(clock * self.sample_rate))
            floor = channel_free_at.get(sender.zigbee_channel, 0)
            start = max(start, floor)
            if start + waveform.size + self.guard_samples > self.total_samples:
                continue
            channel_free_at[sender.zigbee_channel] = (
                start + waveform.size + self.guard_samples
            )
            sequences[sender.sender_id] = sequence + 1
            transmissions.append(
                ScheduledTransmission(
                    sender_id=sender.sender_id,
                    zigbee_channel=sender.zigbee_channel,
                    sequence=sequence,
                    start_sample=start,
                    n_samples=int(waveform.size),
                    data_bits=data_bits,
                    frame_bits=frame_bits,
                )
            )
            contributions.append(
                (waveform, start, transmitter.center_frequency)
            )
        return transmissions, contributions

    # -- rendering ----------------------------------------------------------

    def capture(self, rng):
        """Render the full baseband capture; returns ``(samples, truth)``."""
        transmissions, contributions = self.schedule(rng)
        samples = self.front_end.capture(
            contributions,
            self.total_samples,
            rng=rng,
            include_noise=self.include_noise,
        )
        return samples, transmissions

    def blocks(self, samples, block_size):
        """Slice a capture into fixed-size blocks (last one may be short)."""
        block_size = int(block_size)
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        for lo in range(0, samples.size, block_size):
            yield samples[lo : lo + block_size]
