"""Convergecast network simulator: many SymBee sensors, one WiFi sink.

Time handling is event-ordered on a shared-channel timeline:

1. every node generates readings as a Poisson process and queues frames;
2. a frame's transmission start is decided by unslotted CSMA-CA against
   the committed channel timeline (hidden terminals are ignored — all
   nodes hear each other, matching a single-room deployment);
3. transmissions that still overlap (CCA race within a backoff slot)
   collide and are lost; up to ``max_retries`` MAC retries follow;
4. every non-collided transmission is then pushed through the *actual*
   PHY simulation (:class:`repro.core.SymBeeLink`) for the node's
   distance/scenario, deciding delivery bit-by-bit.

The result object aggregates delivery ratio, end-to-end latency,
aggregate goodput and channel utilization.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.frame import frame_overhead_bits
from repro.core.link import SymBeeLink
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.runtime import as_seed_sequence, run_trials
from repro.runtime.timing import StageTimings
from repro.sim.scheduler import EventScheduler
from repro.zigbee.csma import CsmaCa
from repro.zigbee.frame import ppdu_duration_seconds
from repro.zigbee.mac import MAC_OVERHEAD_BYTES

#: MAC-layer telemetry: per-attempt outcomes plus the queueing delay a
#: frame accrues between its reading being generated and hitting the air.
_M_ARRIVALS = REGISTRY.counter("mac.arrivals")
_M_TRANSMISSIONS = REGISTRY.counter("mac.transmissions")
_M_CSMA_FAILURES = REGISTRY.counter("mac.csma_failures")
_M_COLLISIONS = REGISTRY.counter("mac.collisions")
_M_RETRIES = REGISTRY.counter("mac.retries")
_M_DELIVERED = REGISTRY.counter("mac.delivered")
_M_PHY_LOST = REGISTRY.counter("mac.phy_lost")
_M_QUEUE_DELAY = REGISTRY.histogram(
    "mac.queue_delay_s",
    edges=(0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0),
)


def _phy_trial(task):
    """One PHY frame evaluation (module-level so it pickles to workers).

    The trial rng is derived purely from the transmission's identity, so
    outcomes match between inline and deferred/parallel evaluation.
    """
    link, seed, data_bits, sequence = task
    rng = np.random.default_rng(seed)
    link.timings.reset()
    bits = rng.integers(0, 2, data_bits)
    _, frame = link.send_frame(
        bits,
        sequence=sequence & 0xFF,
        rng=rng,
        mac_sequence=sequence & 0xFF,
    )
    delivered = frame is not None and frame.crc_ok
    return delivered, link.timings.as_dict()


@dataclass(frozen=True)
class NodeConfig:
    """One sensor node's placement and traffic.

    ``position`` is an optional (x, y) in metres with the WiFi sink at
    the origin; when given, ``distance_m`` may be omitted (it is derived)
    and pairwise node distances enable hidden-terminal modelling via the
    network's ``carrier_sense_range_m``.
    """

    node_id: int
    distance_m: float = None
    reading_interval_s: float = 0.5
    data_bits: int = 16
    position: tuple = None

    def __post_init__(self):
        if self.position is not None:
            x, y = self.position
            derived = float(np.hypot(x, y))
            if self.distance_m is None:
                object.__setattr__(self, "distance_m", derived)
        if self.distance_m is None or self.distance_m <= 0:
            raise ValueError("node needs a positive distance or a position")

    def distance_to(self, other):
        """Pairwise distance; requires both nodes to have positions."""
        if self.position is None or other.position is None:
            raise ValueError("pairwise distance needs node positions")
        return float(
            np.hypot(
                self.position[0] - other.position[0],
                self.position[1] - other.position[1],
            )
        )


@dataclass
class TransmissionRecord:
    """One on-air attempt and its fate."""

    node_id: int
    sequence: int
    created_s: float
    start_s: float
    duration_s: float
    attempt: int
    collided: bool = False
    delivered: bool = False

    @property
    def end_s(self):
        return self.start_s + self.duration_s

    @property
    def latency_s(self):
        return self.end_s - self.created_s


@dataclass
class NetworkResult:
    """Aggregated outcome of one simulation run."""

    records: list = field(default_factory=list)
    readings_generated: int = 0
    sim_duration_s: float = 0.0

    @property
    def delivered(self):
        return [r for r in self.records if r.delivered]

    @property
    def delivery_ratio(self):
        if self.readings_generated == 0:
            return 0.0
        unique = {(r.node_id, r.sequence) for r in self.delivered}
        return len(unique) / self.readings_generated

    @property
    def collision_rate(self):
        if not self.records:
            return 0.0
        return sum(r.collided for r in self.records) / len(self.records)

    @property
    def mean_latency_s(self):
        latencies = [r.latency_s for r in self.delivered]
        return float(np.mean(latencies)) if latencies else float("nan")

    @property
    def channel_utilization(self):
        if self.sim_duration_s <= 0:
            return 0.0
        busy = sum(r.duration_s for r in self.records)
        return busy / self.sim_duration_s

    def goodput_bps(self, data_bits_per_reading):
        if self.sim_duration_s <= 0:
            return 0.0
        unique = {(r.node_id, r.sequence) for r in self.delivered}
        return len(unique) * data_bits_per_reading / self.sim_duration_s


class ConvergecastNetwork:
    """N SymBee sensors converging on one WiFi access point."""

    def __init__(
        self,
        nodes,
        scenario,
        sim_duration_s=5.0,
        max_retries=2,
        seed=0,
        csma=None,
        carrier_sense_range_m=None,
        jobs=None,
    ):
        self.nodes = list(nodes)
        if not self.nodes:
            raise ValueError("need at least one node")
        self.scenario = scenario
        self.sim_duration_s = float(sim_duration_s)
        self.max_retries = int(max_retries)
        self.rng = np.random.default_rng(seed)
        #: PHY trial seeds derive from this root keyed by the
        #: transmission identity (node, sequence, attempt), so a frame's
        #: fate is independent of evaluation order and worker count.
        self._phy_seed_root = as_seed_sequence(seed)
        #: Worker processes for PHY evaluation (None -> ``REPRO_JOBS``).
        #: Only ``max_retries=0`` runs can parallelize: with retries, a
        #: frame's delivery outcome feeds back into the MAC schedule.
        self.jobs = jobs
        #: Merged per-stage PHY timing breakdown across all evaluations.
        self.phy_timings = StageTimings()
        self.csma = csma if csma is not None else CsmaCa()
        #: When set (and nodes carry positions), a node's CCA only hears
        #: transmitters within this range — the hidden-terminal model.
        #: The sink still receives everything, so hidden transmissions
        #: collide at the receiver.
        self.carrier_sense_range_m = carrier_sense_range_m
        if carrier_sense_range_m is not None:
            if any(node.position is None for node in self.nodes):
                raise ValueError(
                    "carrier sensing by range requires node positions"
                )
            self._audible = {
                (a.node_id, b.node_id): a.distance_to(b) <= carrier_sense_range_m
                for a in self.nodes
                for b in self.nodes
            }
        else:
            self._audible = None
        self._links = {
            node.node_id: SymBeeLink(
                link_channel=scenario.link(node.distance_m),
                interference=scenario.interference(),
            )
            for node in self.nodes
        }
        self._timeline = []  # committed (start, end) intervals, kept sorted

    # -- channel timeline -------------------------------------------------------

    def _channel_busy(self, start_s, duration_s, listener_id=None):
        """Busy as perceived by ``listener_id`` (None = hears everything)."""
        end_s = start_s + duration_s
        for s, e, owner in self._timeline:
            if not (s < end_s and start_s < e):
                continue
            if (
                listener_id is None
                or self._audible is None
                or owner is None
                or self._audible[(listener_id, owner)]
            ):
                return True
        return False

    def _commit(self, start_s, end_s, owner=None):
        self._timeline.append((start_s, end_s, owner))
        self._timeline.sort()

    @staticmethod
    def _frame_airtime(node):
        """On-air duration of one SymBee frame from this node."""
        payload_bytes = 4 + frame_overhead_bits() + node.data_bits
        return ppdu_duration_seconds(payload_bytes + MAC_OVERHEAD_BYTES)

    def _phy_seed(self, node_id, sequence, attempt):
        """Deterministic per-transmission seed, independent of order."""
        root = self._phy_seed_root
        return np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=root.spawn_key + (int(node_id), int(sequence), int(attempt)),
        )

    # -- simulation ----------------------------------------------------------------

    def _generate_arrivals(self):
        """Poisson reading arrivals per node, merged chronologically."""
        arrivals = []
        for node in self.nodes:
            clock = float(self.rng.exponential(node.reading_interval_s))
            sequence = 0
            while clock < self.sim_duration_s:
                arrivals.append((clock, node, sequence))
                sequence += 1
                clock += float(self.rng.exponential(node.reading_interval_s))
        arrivals.sort(key=lambda item: item[0])
        return arrivals

    def run(self):
        """Run one simulation and return a :class:`NetworkResult`.

        The MAC timeline always runs serially (it is a single shared
        channel).  PHY evaluations run inline when retries are enabled —
        a lost frame reschedules itself, so delivery must be known before
        the event loop proceeds — and are otherwise deferred and batched
        through the parallel runtime, since without retries a frame's
        fate cannot influence the schedule.
        """
        with TRACER.span("network.run", nodes=len(self.nodes)):
            result = self._run_events()
        if REGISTRY.enabled:
            # Final accounting (not inline): collision revocation can
            # retro-actively flip earlier records, so the settled record
            # list is the only consistent source.
            records = result.records
            _M_ARRIVALS.inc(result.readings_generated)
            _M_TRANSMISSIONS.inc(len(records))
            _M_COLLISIONS.inc(sum(r.collided for r in records))
            _M_DELIVERED.inc(len(result.delivered))
            _M_PHY_LOST.inc(
                sum(1 for r in records if not r.collided and not r.delivered)
            )
            _M_QUEUE_DELAY.observe_array(
                [r.start_s - r.created_s for r in records]
            )
        return result

    def _run_events(self):
        """The MAC/PHY event loop behind :meth:`run`.

        Events run on a :class:`repro.sim.EventScheduler`: one event per
        frame attempt, retries rescheduling themselves.  The scheduler's
        deterministic (time, insertion) tie-breaking reproduces the
        historical sorted-list ordering exactly — a retry's time never
        precedes its own trigger event, so at equal timestamps the
        insertion order is the processing order in both schemes — which
        keeps every ``self.rng`` draw, and therefore every result,
        bit-identical across the refactor.
        """
        arrivals = self._generate_arrivals()
        result = NetworkResult(
            readings_generated=len(arrivals), sim_duration_s=self.sim_duration_s
        )
        node_free_at = {node.node_id: 0.0 for node in self.nodes}
        defer_phy = self.max_retries == 0
        deferred = []  # (record, phy task) pairs when defer_phy
        scheduler = EventScheduler()

        def attempt_event(created, node, sequence, attempt):
            start_floor = max(created, node_free_at[node.node_id])

            def hears(start_s, duration_s, _node_id=node.node_id):
                return self._channel_busy(start_s, duration_s, _node_id)

            outcome = self.csma.attempt(start_floor, hears, self.rng)
            if not outcome.success:
                _M_CSMA_FAILURES.inc()
                if attempt < self.max_retries:
                    _M_RETRIES.inc()
                    scheduler.at(
                        outcome.tx_time_s,
                        attempt_event,
                        outcome.tx_time_s,
                        node,
                        sequence,
                        attempt + 1,
                    )
                return

            duration = self._frame_airtime(node)
            record = TransmissionRecord(
                node_id=node.node_id,
                sequence=sequence,
                created_s=created,
                start_s=outcome.tx_time_s,
                duration_s=duration,
                attempt=attempt,
            )
            # Collision at the *sink*: CCA can pass while an overlapping
            # transmission exists (backoff races, or a hidden terminal
            # the sender cannot hear).  The receiver loses BOTH frames,
            # so earlier overlapped records are revoked too.
            record.collided = self._channel_busy(record.start_s, duration)
            if record.collided:
                for earlier in result.records:
                    if (
                        earlier.start_s < record.end_s
                        and record.start_s < earlier.end_s
                    ):
                        earlier.collided = True
                        earlier.delivered = False
            self._commit(record.start_s, record.end_s, node.node_id)
            node_free_at[node.node_id] = record.end_s

            if not record.collided:
                task = (
                    self._links[node.node_id],
                    self._phy_seed(node.node_id, sequence, attempt),
                    node.data_bits,
                    sequence,
                )
                if defer_phy:
                    deferred.append((record, task))
                else:
                    delivered, shard = _phy_trial(task)
                    self.phy_timings.merge(shard)
                    record.delivered = delivered

            result.records.append(record)
            if not record.delivered and attempt < self.max_retries:
                _M_RETRIES.inc()
                scheduler.at(
                    record.end_s,
                    attempt_event,
                    record.end_s,
                    node,
                    sequence,
                    attempt + 1,
                )

        for created, node, sequence in arrivals:
            scheduler.at(created, attempt_event, created, node, sequence, 0)
        scheduler.run()

        if deferred:
            outcomes = run_trials(
                _phy_trial, [task for _, task in deferred], jobs=self.jobs
            )
            for (record, _), (delivered, shard) in zip(deferred, outcomes):
                self.phy_timings.merge(shard)
                # A later event may have revoked this record (hidden-
                # terminal collision at the sink) after it was queued.
                record.delivered = delivered and not record.collided

        return result
