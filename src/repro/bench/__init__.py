"""Benchmark artifact tooling: cross-PR trajectory aggregation.

The acceptance benchmarks under ``benchmarks/`` each write a
``BENCH_*.json`` artifact at the repo root; :mod:`repro.bench.trajectory`
reads them all back and renders the performance story across PRs
(``python -m repro bench trajectory``).
"""

from repro.bench.trajectory import collect_artifacts, print_trajectory

__all__ = ["collect_artifacts", "print_trajectory"]
