"""Aggregate every ``BENCH_*.json`` artifact into one trajectory view.

Each perf PR records its acceptance numbers in a schema shaped around
that PR's claim — link-level frames/sec (PR 1-2), streaming Msps
(PR 3+), transport goodput (PR 4) — so this reader does not demand a
common schema.  It walks each artifact for the throughput-like leaves
(``effective_msps`` with its sibling ``x_realtime``, ``frames_per_sec``,
``goodput_bps``) and renders two views:

* a **trajectory table** — the best streaming throughput per artifact,
  in artifact order, so the PR-over-PR arc is one glance; and
* a **detail table** — every throughput leaf with its config path.

Two artifacts get first-class sections on top of the generic leaf
walk, because their headline figures are not sample throughputs: the
gateway capacity artifact (``BENCH_GATEWAY.json``, headline
**tenants-per-core at realtime**) and the fleet simulator artifact
(``BENCH_PR8.json``, headline **frames/s**).  Both appear as dedicated
tables and as ``gateway`` / ``sim`` keys in the JSON document.

When ``BENCH_SMOKE_TREND.jsonl`` exists (appended by the CI perf-smoke
trend gate), its most recent entries are shown as well; when
``BENCH_SMOKE_LIVE.jsonl`` exists (a ``listen --metrics-stream`` live
time series captured by the same job), its throughput envelope is
summarized too.  ``trajectory_report`` renders the same content as a
stable machine-readable document (``bench trajectory --json``).

Numbers from different artifacts were recorded in different sessions on
shared hosts; cross-artifact ratios are indicative only.  The
authoritative speedups are the same-run baselines *inside* each
artifact.
"""

import json
from pathlib import Path

#: Leaf keys treated as throughput figures, with display units.
_THROUGHPUT_KEYS = {
    "effective_msps": "Msps",
    "frames_per_sec": "frames/s",
    "goodput_bps": "bps",
}

#: Trend file appended by the CI perf-smoke gate.
TREND_FILENAME = "BENCH_SMOKE_TREND.jsonl"

#: Live time series captured by the CI perf-smoke job's listen run.
LIVE_FILENAME = "BENCH_SMOKE_LIVE.jsonl"

#: Gateway capacity artifact given a first-class section.
GATEWAY_FILENAME = "BENCH_GATEWAY.json"

#: Fleet simulator artifact given a first-class section.
SIM_FILENAME = "BENCH_PR8.json"

#: Version of the ``trajectory_report`` / ``--json`` document shape.
#: 2 added the ``gateway`` and ``sim`` first-class sections.
REPORT_SCHEMA_VERSION = 2


def _walk_throughput(obj, path=()):
    """Yield ``(config_path, key, value, siblings)`` throughput leaves."""
    if not isinstance(obj, dict):
        return
    for key, value in obj.items():
        if isinstance(value, dict):
            yield from _walk_throughput(value, path + (key,))
        elif key in _THROUGHPUT_KEYS and isinstance(value, (int, float)):
            yield path, key, float(value), obj


def collect_artifacts(root):
    """Read every ``BENCH_*.json`` under ``root`` (non-recursive).

    Returns a list of ``{"name", "path", "data", "leaves"}`` dicts in
    name order, where ``leaves`` is the flat throughput-leaf list from
    :func:`_walk_throughput`.  Unreadable files are skipped with a
    ``"error"`` entry instead of ``"data"`` so the report can say so.
    """
    artifacts = []
    for path in sorted(Path(root).glob("BENCH_*.json")):
        entry = {"name": path.stem, "path": path}
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            entry["error"] = str(error)
            entry["leaves"] = []
        else:
            entry["data"] = data
            entry["leaves"] = list(_walk_throughput(data))
        artifacts.append(entry)
    return artifacts


def _best_streaming(artifact):
    """Best ``effective_msps`` leaf of one artifact, or ``None``."""
    best = None
    for path, key, value, siblings in artifact["leaves"]:
        if key != "effective_msps":
            continue
        # Recorded prior-PR rows carried alongside for reference are not
        # this artifact's own measurement.
        if any(part.startswith("recorded_") for part in path):
            continue
        if best is None or value > best[1]:
            best = (path, value, siblings)
    return best


def read_trend(root, last=8):
    """Most recent perf-smoke trend entries (empty when none recorded)."""
    trend_path = Path(root) / TREND_FILENAME
    if not trend_path.exists():
        return []
    entries = []
    for line in trend_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except ValueError:
            continue
    return entries[-last:]


def read_live_summary(root):
    """Throughput envelope of the perf-smoke live time series, or ``None``.

    Reads ``BENCH_SMOKE_LIVE.jsonl`` (a ``listen --metrics-stream``
    capture) and reduces it to duration, tick count and the
    min/mean/max Msps over timed ticks — enough to see whether live
    throughput sagged mid-run even when the end-to-end average held.
    """
    live_path = Path(root) / LIVE_FILENAME
    if not live_path.exists():
        return None
    from repro.obs.export import read_metrics_stream

    try:
        samples = read_metrics_stream(live_path)
    except (OSError, ValueError):
        return None
    if not samples:
        return None
    timed = [s for s in samples if s.get("dt_s", 0.0) > 0.0]
    msps = [
        s.get("rates", {}).get("stream.engine.samples_in", 0.0) / 1e6
        for s in timed
    ]
    last = samples[-1]
    return {
        "samples": len(samples),
        "duration_s": float(last.get("elapsed_s", 0.0)),
        "final": bool(last.get("final", False)),
        "msps_min": min(msps) if msps else None,
        "msps_mean": sum(msps) / len(msps) if msps else None,
        "msps_max": max(msps) if msps else None,
    }


def _read_json(path):
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def gateway_summary(root):
    """Tenants-per-core capacity rows from the gateway artifact.

    Reads ``BENCH_GATEWAY.json`` and reduces each backend row (any dict
    carrying ``tenants_per_core_at_realtime``) to the capacity claim:
    tenants served, cores used, tenants-per-core at realtime, and the
    per-tenant Msps behind it.  Returns ``None`` when the artifact is
    absent or unreadable.
    """
    data = _read_json(Path(root) / GATEWAY_FILENAME)
    if not isinstance(data, dict):
        return None
    rows = []
    for key, value in data.items():
        if (
            isinstance(value, dict)
            and "tenants_per_core_at_realtime" in value
        ):
            rows.append(
                {
                    "config": key,
                    "tenants": value.get("tenants"),
                    "cores_used": value.get("cores_used"),
                    "tenants_per_core_at_realtime": float(
                        value["tenants_per_core_at_realtime"]
                    ),
                    "effective_msps": value.get("effective_msps"),
                }
            )
    if not rows:
        return None
    gates = data.get("gates", {})
    return {
        "rows": rows,
        "target_tenants_per_core": gates.get("target_tenants_per_core"),
        "cpu_count": data.get("cpu_count"),
    }


def sim_summary(root):
    """Frames-per-second rows from the fleet simulator artifact.

    Reads ``BENCH_PR8.json`` and reduces each campaign row (any dict
    carrying ``frames_per_sec``) to the simulator claim: fleet size,
    frames offered, delivery ratio, wall seconds, frames/s.  Returns
    ``None`` when the artifact is absent or unreadable.
    """
    data = _read_json(Path(root) / SIM_FILENAME)
    if not isinstance(data, dict):
        return None
    rows = []
    for key, value in data.items():
        if isinstance(value, dict) and "frames_per_sec" in value:
            rows.append(
                {
                    "config": key,
                    "nodes": value.get("nodes"),
                    "frames_offered": value.get("frames_offered"),
                    "delivery_ratio": value.get("delivery_ratio"),
                    "wall_seconds": value.get("wall_seconds"),
                    "frames_per_sec": float(value["frames_per_sec"]),
                }
            )
    if not rows:
        return None
    return {
        "rows": rows,
        "fast_path_speedup": data.get("fast_path_speedup"),
    }


def trajectory_report(root="."):
    """The trajectory as one stable machine-readable document.

    Schema (``schema_version`` 2)::

        {"schema_version": 2,
         "root": str,
         "artifacts": [{"name", "error"?,
                        "best_streaming": {"config", "effective_msps",
                                           "x_realtime"} | null,
                        "throughput": [{"config", "key", "value",
                                        "unit"}]}],
         "gateway": gateway_summary() | null,
         "sim": sim_summary() | null,
         "trend": [trend entries, newest last],
         "live": read_live_summary() | null}
    """
    artifacts = []
    for artifact in collect_artifacts(root):
        entry = {"name": artifact["name"]}
        if "error" in artifact:
            entry["error"] = artifact["error"]
        best = _best_streaming(artifact)
        if best is None:
            entry["best_streaming"] = None
        else:
            path, value, siblings = best
            realtime = siblings.get("x_realtime")
            entry["best_streaming"] = {
                "config": "/".join(path),
                "effective_msps": value,
                "x_realtime": (
                    float(realtime) if realtime is not None else None
                ),
            }
        entry["throughput"] = [
            {
                "config": "/".join(path),
                "key": key,
                "value": value,
                "unit": _THROUGHPUT_KEYS[key],
            }
            for path, key, value, _siblings in artifact["leaves"]
        ]
        artifacts.append(entry)
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "root": str(Path(root).resolve()),
        "artifacts": artifacts,
        "gateway": gateway_summary(root),
        "sim": sim_summary(root),
        "trend": read_trend(root),
        "live": read_live_summary(root),
    }


def print_trajectory(root=".", print_fn=print):
    """Render the full trajectory report for ``root``; returns 0/1.

    Returns 1 (and says so) when no artifacts exist — a CI checkout
    without recorded benchmarks is a report-worthy state, not a crash.
    """
    from repro.experiments.common import print_table

    artifacts = collect_artifacts(root)
    if not artifacts:
        print_fn(f"no BENCH_*.json artifacts under {Path(root).resolve()}")
        return 1

    rows = []
    for artifact in artifacts:
        if "error" in artifact:
            rows.append((artifact["name"], "(unreadable)", "-", "-"))
            continue
        best = _best_streaming(artifact)
        if best is None:
            rows.append((artifact["name"], "(no streaming rows)", "-", "-"))
            continue
        path, value, siblings = best
        realtime = siblings.get("x_realtime")
        rows.append(
            (
                artifact["name"],
                "/".join(path) or "(top level)",
                f"{value:.3f}",
                f"{realtime:.4f}" if realtime is not None else "-",
            )
        )
    print_table(
        ("artifact", "best streaming config", "Msps", "x realtime"),
        rows,
        title="streaming throughput trajectory (best per artifact)",
    )

    detail_rows = []
    for artifact in artifacts:
        for path, key, value, _siblings in artifact["leaves"]:
            detail_rows.append(
                (
                    artifact["name"],
                    "/".join(path) or "(top level)",
                    f"{value:g}",
                    _THROUGHPUT_KEYS[key],
                )
            )
    if detail_rows:
        print_table(
            ("artifact", "config", "value", "unit"),
            detail_rows,
            title="all recorded throughput figures",
        )

    gateway = gateway_summary(root)
    if gateway is not None:
        target = gateway.get("target_tenants_per_core")
        gateway_rows = [
            (
                row["config"],
                str(row["tenants"] if row["tenants"] is not None else "-"),
                str(
                    row["cores_used"]
                    if row["cores_used"] is not None
                    else "-"
                ),
                f"{row['tenants_per_core_at_realtime']:.2f}",
                f"{row['effective_msps']:.2f}"
                if row["effective_msps"] is not None
                else "-",
            )
            for row in gateway["rows"]
        ]
        print_table(
            ("config", "tenants", "cores", "tenants/core", "Msps"),
            gateway_rows,
            title=(
                f"gateway capacity ({GATEWAY_FILENAME}"
                + (
                    f", target {target:g} tenants/core)"
                    if target is not None
                    else ")"
                )
            ),
        )

    sim = sim_summary(root)
    if sim is not None:
        sim_rows = [
            (
                row["config"],
                str(row["nodes"] if row["nodes"] is not None else "-"),
                str(
                    row["frames_offered"]
                    if row["frames_offered"] is not None
                    else "-"
                ),
                f"{row['delivery_ratio']:.4f}"
                if row["delivery_ratio"] is not None
                else "-",
                f"{row['frames_per_sec']:.1f}",
            )
            for row in sim["rows"]
        ]
        speedup = sim.get("fast_path_speedup")
        print_table(
            ("campaign", "nodes", "frames", "delivery", "frames/s"),
            sim_rows,
            title=(
                f"fleet simulator ({SIM_FILENAME}"
                + (
                    f", fast path {speedup:g}x)"
                    if speedup is not None
                    else ")"
                )
            ),
        )

    trend = read_trend(root)
    if trend:
        trend_rows = [
            (
                str(entry.get("recorded_at", "-")),
                str(entry.get("cpu_count", "-")),
                f"{entry['serial_msps']:.2f}"
                if "serial_msps" in entry
                else "-",
                f"{entry['jobs2_msps']:.2f}" if "jobs2_msps" in entry else "-",
                f"{entry['jobs4_msps']:.2f}" if "jobs4_msps" in entry else "-",
                f"{entry['scan_noise_msps']:.2f}"
                if "scan_noise_msps" in entry
                else "-",
            )
            for entry in trend
        ]
        print_table(
            ("recorded", "cpus", "serial Msps", "jobs=2", "jobs=4", "scan"),
            trend_rows,
            title=f"perf-smoke trend (last {len(trend)} of {TREND_FILENAME})",
        )

    live = read_live_summary(root)
    if live is not None:
        fmt = lambda v: f"{v:.2f}" if v is not None else "-"  # noqa: E731
        print_fn(
            f"live stream ({LIVE_FILENAME}): {live['samples']} sample(s) "
            f"over {live['duration_s']:.2f}s, Msps "
            f"min/mean/max = {fmt(live['msps_min'])}/"
            f"{fmt(live['msps_mean'])}/{fmt(live['msps_max'])}"
            + ("" if live["final"] else " (no final record)")
        )

    print_fn(
        "note: artifacts were recorded in separate sessions; compare "
        "ratios within an artifact, not across them."
    )
    return 0


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="Aggregate BENCH_*.json artifacts into one report"
    )
    parser.add_argument(
        "--root", default=".", help="directory holding the artifacts"
    )
    args = parser.parse_args(argv)
    return print_trajectory(args.root)


if __name__ == "__main__":
    raise SystemExit(main())
