"""EMF — Embedding Multiple Flows (Chi et al., INFOCOM'17; Figure 16).

EMF piggybacks CTC information onto *existing* data traffic by shaping
per-packet attributes; the observable used here is packet duration
(payload padding), with several duration levels encoding a multi-bit
symbol per packet.  Existing traffic is modelled as a data packet every
``traffic_interval_s`` — the scheme cannot transmit faster than the
legacy flow it embeds into, which is what caps packet-level rates.

Defaults: 4 duration levels (2 bits) on a 50 Hz sensor flow = 100 bps.
"""

from repro.baselines.base import PacketEvent, PacketLevelCtc, events_in_order, quantize

#: Shortest legacy data packet EMF can shape (the paper's minimal
#: 18-byte ZigBee packet, 576 us on air).
BASE_DURATION_S = 576e-6


class Emf(PacketLevelCtc):
    """Packet-duration modulation over existing traffic."""

    name = "EMF"

    def __init__(self, traffic_interval_s=0.020, duration_step_s=128e-6, bits_per_packet=2):
        if traffic_interval_s <= 0 or duration_step_s <= 0:
            raise ValueError("intervals must be positive")
        if bits_per_packet < 1:
            raise ValueError("need at least one bit per packet")
        max_pad = (2 ** bits_per_packet - 1) * duration_step_s
        if BASE_DURATION_S + max_pad >= traffic_interval_s:
            raise ValueError("padded packet must fit inside the traffic interval")
        self.traffic_interval_s = float(traffic_interval_s)
        self.duration_step_s = float(duration_step_s)
        self.bits_per_packet = int(bits_per_packet)

    def _chunks(self, bits):
        m = self.bits_per_packet
        padded = list(bits) + [0] * ((-len(bits)) % m)
        for start in range(0, len(padded), m):
            chunk = padded[start : start + m]
            value = 0
            for bit in chunk:
                value = (value << 1) | int(bit)
            yield value

    def encode(self, bits, rng):
        events = []
        index = 0
        for value in self._chunks(bits):
            events.append(
                PacketEvent(
                    time_s=index * self.traffic_interval_s,
                    duration_s=BASE_DURATION_S + value * self.duration_step_s,
                )
            )
            index += 1
        return events, index * self.traffic_interval_s

    def decode(self, events):
        bits = []
        for event in events_in_order(events):
            value = quantize(event.duration_s - BASE_DURATION_S, self.duration_step_s)
            value = max(0, min(value, 2 ** self.bits_per_packet - 1))
            bits.extend(
                (value >> (self.bits_per_packet - 1 - i)) & 1
                for i in range(self.bits_per_packet)
            )
        return bits
