"""C-Morse — transparent Morse coding (Yin et al., INFOCOM'17).

The state of the art for ZigBee->WiFi before SymBee, and the paper's
145.4x comparison anchor: C-Morse reports 215 bps.  It schedules the
durations of (existing) ZigBee packets into Morse-style symbols: a short
packet is a dot (bit 0), a long packet a dash (bit 1), separated by
guard gaps that keep the scheme transparent to legacy traffic.

Defaults are chosen so the *measured* rate lands at C-Morse's published
215 bps for random bits: dot = the paper's minimal 576 us packet,
dash = 3 dots, and a 3.5 ms mean guard gap (the rescheduling slack that
transparency over real traffic costs).
"""

from repro.baselines.base import PacketEvent, PacketLevelCtc, events_in_order

DOT_DURATION_S = 576e-6
DASH_DURATION_S = 3 * DOT_DURATION_S


class CMorse(PacketLevelCtc):
    """Packet-duration Morse coding."""

    name = "C-Morse"

    def __init__(self, guard_gap_s=3.5e-3, gap_jitter_s=0.4e-3):
        if guard_gap_s <= 0:
            raise ValueError("guard gap must be positive")
        if not 0 <= gap_jitter_s < guard_gap_s:
            raise ValueError("jitter must be smaller than the gap")
        self.guard_gap_s = float(guard_gap_s)
        self.gap_jitter_s = float(gap_jitter_s)

    def encode(self, bits, rng):
        events = []
        clock = 0.0
        for bit in bits:
            duration = DASH_DURATION_S if int(bit) else DOT_DURATION_S
            events.append(PacketEvent(time_s=clock, duration_s=duration))
            gap = self.guard_gap_s
            if self.gap_jitter_s > 0:
                gap += rng.uniform(-self.gap_jitter_s, self.gap_jitter_s)
            clock += duration + gap
        return events, clock

    def decode(self, events):
        threshold = (DOT_DURATION_S + DASH_DURATION_S) / 2.0
        return [
            1 if event.duration_s > threshold else 0
            for event in events_in_order(events)
        ]
