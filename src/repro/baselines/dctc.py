"""DCTC — transparent CTC over data traffic (Jiang et al., INFOCOM'17).

DCTC conveys bits through the *presence pattern* of legacy data packets
in a slotted timeline: a packet transmitted in its slot is a 1, a slot
left idle is a 0.  The WiFi side only needs per-slot energy sensing.
Because half the slots carry no packet on average, legacy traffic must
be rescheduled rather than added — the "transparent" property.

Defaults: 7 ms slots = one bit per slot = about 143 bps, placing DCTC
between EMF and C-Morse as in the paper's Figure 16 ordering.
"""

from repro.baselines.base import PacketEvent, PacketLevelCtc, events_in_order

#: On-air time of the data packet occupying a busy slot.
PACKET_DURATION_S = 576e-6


class Dctc(PacketLevelCtc):
    """Slotted presence/absence modulation."""

    name = "DCTC"

    def __init__(self, slot_s=0.007):
        if slot_s <= PACKET_DURATION_S:
            raise ValueError("slot must be longer than the packet")
        self.slot_s = float(slot_s)

    def encode(self, bits, rng):
        events = []
        for index, bit in enumerate(bits):
            if int(bit):
                events.append(
                    PacketEvent(
                        time_s=index * self.slot_s, duration_s=PACKET_DURATION_S
                    )
                )
        # The message must be framed by a known length in practice; the
        # timeline length is len(bits) slots regardless of content.
        return events, len(list(bits)) * self.slot_s

    def decode(self, events, n_slots=None):
        """Presence map over the observed timeline.

        Without an explicit ``n_slots`` the receiver reads up to the last
        observed packet (trailing zero slots are unknowable from energy
        alone — the framing layer's job).
        """
        ordered = events_in_order(events)
        if n_slots is None:
            if not ordered:
                return []
            n_slots = int(round(ordered[-1].time_s / self.slot_s)) + 1
        bits = [0] * n_slots
        for event in ordered:
            slot = int(round(event.time_s / self.slot_s))
            if 0 <= slot < n_slots:
                bits[slot] = 1
        return bits

    def simulate(self, bits, rng, loss_rate=0.0):
        """Overridden to give the decoder the slot count (framing)."""
        bits = [int(b) for b in bits]
        events, duration = self.encode(bits, rng)
        observed = self.apply_loss(events, loss_rate, rng)
        decoded = self.decode(observed, n_slots=len(bits))
        correct = sum(1 for sent, got in zip(bits, decoded) if sent == got)
        from repro.baselines.base import CtcSimulationResult

        return CtcSimulationResult(
            scheme=self.name,
            bits_sent=len(bits),
            bits_correct=correct,
            channel_time_s=duration,
        )
