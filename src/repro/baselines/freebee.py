"""FreeBee and A-FreeBee (Kim & He, MobiCom'15; paper Figure 16).

FreeBee modulates the *timing* of periodic beacons that the network
sends anyway: each beacon is shifted from its nominal epoch by a
multiple of a timing quantum, and the shift encodes a small symbol.
The WiFi side timestamps the beacon energy bursts and reads the shifts.

Defaults: a 100 ms beacon interval (typical ZigBee coordinator setting)
and 4 shift levels (2 bits per beacon) give 20 bps — consistent with the
original paper's reported average of about 17.9 bps.

A-FreeBee is the accelerated variant driving several interleaved beacon
streams (here 3), tripling the rate at the cost of more beacon traffic.
"""

from repro.baselines.base import PacketEvent, PacketLevelCtc, events_in_order, quantize

#: On-air time of one beacon frame (a short 802.15.4 frame).
BEACON_DURATION_S = 640e-6


class FreeBee(PacketLevelCtc):
    """Beacon-timing modulation."""

    name = "FreeBee"

    def __init__(self, beacon_interval_s=0.100, shift_quantum_s=2e-3, bits_per_beacon=2):
        if beacon_interval_s <= 0 or shift_quantum_s <= 0:
            raise ValueError("intervals must be positive")
        if bits_per_beacon < 1:
            raise ValueError("need at least one bit per beacon")
        max_shift = (2 ** bits_per_beacon - 1) * shift_quantum_s
        if max_shift >= beacon_interval_s / 2:
            raise ValueError("shift range must stay well inside the interval")
        self.beacon_interval_s = float(beacon_interval_s)
        self.shift_quantum_s = float(shift_quantum_s)
        self.bits_per_beacon = int(bits_per_beacon)

    def _chunks(self, bits):
        m = self.bits_per_beacon
        padded = list(bits) + [0] * ((-len(bits)) % m)
        for start in range(0, len(padded), m):
            chunk = padded[start : start + m]
            value = 0
            for bit in chunk:
                value = (value << 1) | int(bit)
            yield value

    def encode(self, bits, rng):
        events = []
        epoch = 0
        for value in self._chunks(bits):
            nominal = epoch * self.beacon_interval_s
            events.append(
                PacketEvent(
                    time_s=nominal + value * self.shift_quantum_s,
                    duration_s=BEACON_DURATION_S,
                )
            )
            epoch += 1
        return events, epoch * self.beacon_interval_s

    def decode(self, events):
        bits = []
        for event in events_in_order(events):
            epoch = int(round(event.time_s / self.beacon_interval_s - 0.25))
            shift = event.time_s - epoch * self.beacon_interval_s
            value = quantize(shift, self.shift_quantum_s)
            value = max(0, min(value, 2 ** self.bits_per_beacon - 1))
            bits.extend(
                (value >> (self.bits_per_beacon - 1 - i)) & 1
                for i in range(self.bits_per_beacon)
            )
        return bits


class AFreeBee(FreeBee):
    """Accelerated FreeBee: several interleaved beacon streams."""

    name = "A-FreeBee"

    def __init__(self, n_streams=3, **kwargs):
        super().__init__(**kwargs)
        if n_streams < 1:
            raise ValueError("need at least one stream")
        self.n_streams = int(n_streams)

    def encode(self, bits, rng):
        # Round-robin the beacon chunks over the streams; each stream keeps
        # its own epoch grid offset so bursts don't collide.
        values = list(self._chunks(bits))
        events = []
        stream_offset = self.beacon_interval_s / self.n_streams
        for i, value in enumerate(values):
            stream = i % self.n_streams
            epoch = i // self.n_streams
            nominal = epoch * self.beacon_interval_s + stream * stream_offset
            events.append(
                PacketEvent(
                    time_s=nominal + value * self.shift_quantum_s,
                    duration_s=BEACON_DURATION_S,
                    stream=stream,
                )
            )
        epochs = (len(values) + self.n_streams - 1) // self.n_streams
        return events, epochs * self.beacon_interval_s

    def decode(self, events):
        stream_offset = self.beacon_interval_s / self.n_streams
        decoded = {}
        for event in events_in_order(events):
            base = event.time_s - event.stream * stream_offset
            epoch = int(round(base / self.beacon_interval_s - 0.25))
            shift = base - epoch * self.beacon_interval_s
            value = quantize(shift, self.shift_quantum_s)
            value = max(0, min(value, 2 ** self.bits_per_beacon - 1))
            decoded[epoch * self.n_streams + event.stream] = value
        bits = []
        for index in sorted(decoded):
            value = decoded[index]
            bits.extend(
                (value >> (self.bits_per_beacon - 1 - i)) & 1
                for i in range(self.bits_per_beacon)
            )
        return bits
