"""Common machinery for packet-level CTC simulators.

The abstraction follows the paper's Section II-B: packet-level schemes
use "the packet as the basic unit in modulation (analogous to 'pulse' in
physical layer)", so all a scheme emits is a timeline of packet events
and all a receiver sees is their coarse observables.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PacketEvent:
    """One ZigBee packet as observed at packet granularity by WiFi.

    ``time_s`` is the on-air start, ``duration_s`` the busy-channel time.
    ``stream`` distinguishes concurrent beacon streams (A-FreeBee).
    """

    time_s: float
    duration_s: float
    stream: int = 0

    def __post_init__(self):
        if self.time_s < 0:
            raise ValueError("event time must be nonnegative")
        if self.duration_s <= 0:
            raise ValueError("event duration must be positive")


@dataclass
class CtcSimulationResult:
    """Measured outcome of delivering one message."""

    scheme: str
    bits_sent: int
    bits_correct: int
    channel_time_s: float

    @property
    def throughput_bps(self):
        """Correct bits per second of occupied channel time."""
        if self.channel_time_s <= 0:
            return 0.0
        return self.bits_correct / self.channel_time_s

    @property
    def bit_error_rate(self):
        if self.bits_sent == 0:
            return 0.0
        return 1.0 - self.bits_correct / self.bits_sent


class PacketLevelCtc(ABC):
    """A packet-level CTC scheme: bits -> packet schedule -> bits."""

    #: Human-readable scheme name (set by subclasses).
    name = "abstract"

    @abstractmethod
    def encode(self, bits, rng):
        """Schedule packet events conveying ``bits``.

        Returns ``(events, total_duration_s)`` where ``total_duration_s``
        is the channel time the message occupies end to end (including
        the idle gaps the modulation itself requires).
        """

    @abstractmethod
    def decode(self, events):
        """Recover bits from observed events (possibly with losses)."""

    def apply_loss(self, events, loss_rate, rng):
        """Drop each packet independently with probability ``loss_rate``.

        Packet-level schemes degrade through lost packets rather than bit
        noise; this models the ZigBee PER of the deployment site.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if loss_rate == 0.0:
            return list(events)
        keep = rng.random(len(events)) >= loss_rate
        return [e for e, k in zip(events, keep) if k]

    def simulate(self, bits, rng, loss_rate=0.0):
        """Deliver one message and measure the achieved rate."""
        bits = [int(b) for b in bits]
        events, duration = self.encode(bits, rng)
        observed = self.apply_loss(events, loss_rate, rng)
        decoded = self.decode(observed)
        correct = sum(
            1 for sent, got in zip(bits, decoded) if sent == got
        )
        return CtcSimulationResult(
            scheme=self.name,
            bits_sent=len(bits),
            bits_correct=correct,
            channel_time_s=duration,
        )

    def measured_rate_bps(self, rng, n_bits=512, loss_rate=0.0):
        """Throughput measured over a random message of ``n_bits``."""
        bits = rng.integers(0, 2, n_bits)
        return self.simulate(bits, rng, loss_rate=loss_rate).throughput_bps


def events_in_order(events):
    """Events sorted by start time (decoders normalize with this)."""
    return sorted(events, key=lambda e: (e.time_s, e.stream))


def quantize(value, step):
    """Snap a continuous observation to the nearest modulation step."""
    if step <= 0:
        raise ValueError("step must be positive")
    return int(np.round(value / step))
