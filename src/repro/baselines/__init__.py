"""Packet-level CTC baselines (paper Figure 16).

Each baseline is an event-level simulator: the scheme schedules ZigBee
packet transmissions (the only thing a packet-level CTC can control), a
model WiFi observer sees arrival times / durations / presence, and the
scheme's decoder recovers bits from those observables.  Rates are then
*measured* from simulated channel time rather than hardcoded.

The paper prints no numeric bar heights for Figure 16 except C-Morse
(215 bps, its published ZigBee->WiFi rate); the other schemes' default
parameters are set from their papers' designs and documented per class.
"""

from repro.baselines.base import CtcSimulationResult, PacketEvent, PacketLevelCtc
from repro.baselines.freebee import FreeBee, AFreeBee
from repro.baselines.emf import Emf
from repro.baselines.dctc import Dctc
from repro.baselines.cmorse import CMorse

__all__ = [
    "CtcSimulationResult",
    "PacketEvent",
    "PacketLevelCtc",
    "FreeBee",
    "AFreeBee",
    "Emf",
    "Dctc",
    "CMorse",
    "all_baselines",
]


def all_baselines():
    """The five comparison schemes of Figure 16, in the paper's order."""
    return [FreeBee(), AFreeBee(), Emf(), Dctc(), CMorse()]
