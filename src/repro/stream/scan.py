"""Scan-kernel registry for the idle-listening preamble search.

The session's search state is by far the hottest idle path — a receiver
at 20 Msps spends almost all of its time scanning noise for a preamble,
not decoding frames — so the scanner is a swappable backend benchmarked
head-to-head (the same framing the exact/fast registry in
:mod:`repro.dsp.kernels` gives the arithmetic kernels) rather than a
hardcoded loop:

* ``grouped`` — the PR-5 scanner: dense count/coherence gates over
  groups of 8 chunks, then a Python loop running the concentration
  stage per surviving chunk.  Kept as the reference implementation.
* ``batched`` (default) — the whole gate cascade evaluated over a
  strided 2-D view of many chunks per vector dispatch: one masked
  row-max replaces the per-chunk ``np.where``/``max`` pair, the
  concentration stage runs for every surviving chunk in one batch, and
  the Python loop shrinks to the cluster-anchor arithmetic of chunks
  that cleared *every* dense gate.  **Bit-identical decisions and
  metrics** to ``grouped``: every gate is a pure function of one
  chunk's cache slice and both kernels compare exactly the same floats,
  so batching cannot change an outcome (asserted by the test suite).
* ``fft`` — the ``batched`` cascade over a fold profile computed by the
  overlap-save FFT comb correlation
  (:func:`repro.dsp.kernels.preamble_fold_fft`) instead of the exact
  direct fold.  Decode-equivalent, not bit-identical: the FFT profile
  differs from the exact one at ~1e-13 relative, well inside the gate
  slack.  Exists so the FFT-vs-direct trade is measured, not assumed —
  with only ``folds = 4`` comb taps the direct fold is 3 vector adds
  and usually wins.
"""

from dataclasses import dataclass

__all__ = [
    "DEFAULT_SCAN_KERNEL",
    "SCAN_KERNELS",
    "ScanKernel",
    "validate_scan_kernel",
]


@dataclass(frozen=True)
class ScanKernel:
    """One scanner backend: cascade shape + fold-profile arithmetic."""

    name: str
    #: Whether the gate cascade runs over the strided 2-D chunk batch
    #: (one vector dispatch per gate) or the PR-5 per-chunk loop.
    batched: bool
    #: :func:`repro.dsp.kernels.preamble_fold` mode used to build the
    #: derived fold-profile caches ("exact" keeps the bit-identity
    #: contract; "fast" is the overlap-save FFT correlation).
    fold_mode: str
    description: str


SCAN_KERNELS = {
    "grouped": ScanKernel(
        name="grouped",
        batched=False,
        fold_mode="exact",
        description="PR-5 reference: dense gates per 8-chunk group, "
        "per-chunk Python cascade",
    ),
    "batched": ScanKernel(
        name="batched",
        batched=True,
        fold_mode="exact",
        description="full cascade over a strided 2-D chunk batch, "
        "bit-identical to grouped",
    ),
    "fft": ScanKernel(
        name="fft",
        batched=True,
        fold_mode="fast",
        description="batched cascade over the overlap-save FFT comb "
        "correlation profile (decode-equivalent)",
    ),
}

DEFAULT_SCAN_KERNEL = "batched"


def validate_scan_kernel(name):
    """Return the :class:`ScanKernel` for ``name`` (raise if unknown)."""
    try:
        return SCAN_KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown scan kernel {name!r}; expected one of "
            f"{tuple(SCAN_KERNELS)}"
        ) from None
