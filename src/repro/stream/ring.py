"""Bounded block queue between a sample source and the receive engine.

A real SDR front end produces samples at a fixed rate whether or not the
decoder keeps up; when it does not, hardware drops samples.  The ring
models that contract in-process: a producer :meth:`RingBufferSource.push`
per block, a consumer :meth:`RingBufferSource.pop` per block, and a fixed
capacity between them.  A push against a full ring *drops the block* —
newest-lost, like an overrunning receive FIFO — and the loss is accounted
explicitly (``samples_dropped``, ``overruns``) instead of silently
stretching the buffer.  That accounting is the backpressure signal: a
nonzero drop count means the consumer must use bigger blocks, fewer
sessions, or a faster machine; the engine never blocks the producer.

Metrics (``repro.obs``): ``stream.ring.blocks_in`` / ``blocks_out`` /
``overruns`` counters, ``stream.ring.samples_dropped`` counter, a
``stream.ring.depth`` gauge sampled at every push, and a
``stream.ring.high_watermark`` gauge holding the deepest the ring has
been — the early-warning companion to ``overruns``: a watermark hugging
capacity on a clean run says the next slow block loses samples.
"""

from collections import deque

from repro.obs.metrics import REGISTRY

_BLOCKS_IN = REGISTRY.counter("stream.ring.blocks_in")
_BLOCKS_OUT = REGISTRY.counter("stream.ring.blocks_out")
_OVERRUNS = REGISTRY.counter("stream.ring.overruns")
_SAMPLES_DROPPED = REGISTRY.counter("stream.ring.samples_dropped")
_DEPTH = REGISTRY.gauge("stream.ring.depth")
_HIGH_WATERMARK = REGISTRY.gauge("stream.ring.high_watermark")


class RingBufferSource:
    """Fixed-capacity FIFO of sample blocks with overrun accounting."""

    def __init__(self, capacity_blocks=64):
        self.capacity_blocks = int(capacity_blocks)
        if self.capacity_blocks <= 0:
            raise ValueError("capacity_blocks must be positive")
        self._queue = deque()
        self.closed = False
        self.blocks_pushed = 0
        self.blocks_popped = 0
        self.samples_pushed = 0
        self.samples_dropped = 0
        self.overruns = 0
        self.high_watermark = 0

    def __len__(self):
        return len(self._queue)

    def push(self, block):
        """Offer one block; returns ``False`` (and drops it) when full."""
        if self.closed:
            raise ValueError("push on a closed ring")
        if len(self._queue) >= self.capacity_blocks:
            self.overruns += 1
            self.samples_dropped += len(block)
            _OVERRUNS.inc()
            _SAMPLES_DROPPED.inc(len(block))
            _DEPTH.set(len(self._queue))
            return False
        self._queue.append(block)
        self.blocks_pushed += 1
        self.samples_pushed += len(block)
        if len(self._queue) > self.high_watermark:
            self.high_watermark = len(self._queue)
            _HIGH_WATERMARK.set(self.high_watermark)
        _BLOCKS_IN.inc()
        _DEPTH.set(len(self._queue))
        return True

    def pop(self):
        """Next block, or ``None`` when the ring is empty."""
        if not self._queue:
            return None
        block = self._queue.popleft()
        self.blocks_popped += 1
        _BLOCKS_OUT.inc()
        return block

    def close(self):
        """Mark the producer done; queued blocks remain poppable."""
        self.closed = True

    def __iter__(self):
        """Drain queued blocks (producer should be closed or interleaved)."""
        while True:
            block = self.pop()
            if block is None:
                return
            yield block

    def stats(self):
        return {
            "blocks_pushed": self.blocks_pushed,
            "blocks_popped": self.blocks_popped,
            "samples_pushed": self.samples_pushed,
            "samples_dropped": self.samples_dropped,
            "overruns": self.overruns,
            "depth": len(self._queue),
            "high_watermark": self.high_watermark,
        }
