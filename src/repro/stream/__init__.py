"""repro.stream — continuous streaming idle-listening receive engine.

Turns the repo's batch SymBee pipeline into a continuously listening
receiver: an unbounded 20/40 Msps sample stream is consumed in
fixed-size blocks and decoded frames come out, with no dependence on
where the blocks were cut.  See ``docs/streaming.md`` for the
architecture and the block-size-invariance argument.
"""

from repro.stream.engine import StreamEngine, batch_decode_stream
from repro.stream.parallel import ChannelConsumer, channel_consumer
from repro.stream.frontend import (
    ChannelizerFrontEnd,
    FastChannelBank,
    FrontEndBlock,
    StreamingFrontEnd,
    design_lowpass,
    supported_decimations,
)
from repro.stream.ring import RingBufferSource
from repro.stream.scan import (
    DEFAULT_SCAN_KERNEL,
    SCAN_KERNELS,
    validate_scan_kernel,
)
from repro.stream.session import StreamFrame, StreamSession

__all__ = [
    "ChannelConsumer",
    "ChannelizerFrontEnd",
    "DEFAULT_SCAN_KERNEL",
    "FastChannelBank",
    "FrontEndBlock",
    "RingBufferSource",
    "SCAN_KERNELS",
    "StreamEngine",
    "StreamFrame",
    "StreamSession",
    "StreamingFrontEnd",
    "batch_decode_stream",
    "channel_consumer",
    "design_lowpass",
    "supported_decimations",
    "validate_scan_kernel",
]
