"""Block-wise idle-listening front ends with exact tail state.

The batch pipeline hands a whole capture to
:meth:`repro.core.decoder.SymBeeDecoder.phasor_stream` at once; a
continuously listening receiver only ever sees fixed-size sample blocks.
Both autocorrelation quantities the receiver derives are *local*:

* the product ``p[n] = x[n] * conj(x[n + lag])`` pairs exactly two
  samples, so carrying the last ``lag`` samples across block boundaries
  reproduces the batch stream **bit-identically** — every element is the
  same two-operand multiply regardless of where blocks were cut;
* the Schmidl-Cox metric at ``n`` windows ``lag + window`` samples, so a
  ``lag + window - 1`` overlap lets each block's metric entries be
  recomputed exactly over their own windows.  (The batch implementation
  uses one whole-capture cumulative sum, so metric values can differ
  from the streaming ones by float accumulation order — the same
  caveat :func:`repro.dsp.runs.sliding_window_sum` already documents.
  The decode path never consumes the metric, only the products.)

:class:`ChannelizerFrontEnd` adds per-ZigBee-channel isolation for the
multi-sender demux: because every overlapping WiFi/ZigBee pair shares
the *same* Appendix-B correction (+4pi/5), concurrent senders on
different ZigBee channels land on identical product-domain rotations and
cannot be separated after the autocorrelation.  Separation has to happen
before it: mix the 5 MHz-spaced sub-band to DC, low-pass away the other
sub-bands, then form products on the filtered stream (which then needs
no CFO correction at all — the channel sits at its transmit baseband).

Since PR 5 the channelizer also **decimates**: each sub-band only holds
a 2 MHz ZigBee signal, so after the low-pass nothing above ~1.4 MHz
survives and the filtered stream can be kept at a fraction of the
wideband rate.  The decimation factor must divide the autocorrelation
lag, the stable window and the bit period (all multiples of 4 at
20 Msps), so every downstream quantity scales exactly; the polyphase
implementation evaluates the FIR *only at the kept output positions*,
making the whole per-channel chain cost proportional to the decimated
rate.  Two kernel modes (see :mod:`repro.dsp.kernels`): ``exact``
(default, bit-exact block-size invariance — kept outputs are literally
a subsample of the full-rate exact stream) and ``fast`` (native complex
kernels, mixer folded into the filter taps, optional complex64 working
dtype; decode-equivalent, not bit-equivalent).
"""

from dataclasses import dataclass

import numpy as np

from repro.dsp.kernels import (
    exact_cmul,
    exact_lagged_products,
    lagged_products as _lagged_products,
    polyphase_decimate,
    stream_lagged_products,
    validate_mode,
)
from repro.wifi.idle_listening import autocorrelation_metric


def lagged_products(x, lag):
    """Deterministic ``x[n] * conj(x[n + lag])`` (exact kernel).

    Kept as a module-level alias of
    :func:`repro.dsp.kernels.exact_lagged_products` — the streaming
    subsystem's original home for it.
    """
    return exact_lagged_products(x, lag)


@dataclass(frozen=True)
class FrontEndBlock:
    """Newly computed front-end outputs for one input block.

    ``start`` is the global stream index (product coordinates: product
    ``k`` pairs samples ``k`` and ``k + lag``) of ``products[0]``.
    ``metric``/``corr_phase`` are ``None`` unless the front end was built
    with ``compute_metric=True``; their global coordinates coincide with
    the product coordinates (metric ``k`` windows samples ``k ..
    k + lag + window``).
    """

    products: np.ndarray
    start: int
    metric: "np.ndarray | None" = None
    corr_phase: "np.ndarray | None" = None


class StreamingFrontEnd:
    """Chunked autocorrelation products (and optionally the S&C metric).

    Feed arbitrary-size blocks to :meth:`process`; in the default
    ``exact`` mode the concatenation of the returned ``products`` arrays
    is bit-identical to ``lagged_products(whole_stream, lag)`` for any
    blocking, including blocks shorter than the lag — every element is
    scalar-exact complex arithmetic (see
    :func:`repro.dsp.kernels.exact_cmul`), unlike numpy's FMA-contracted
    native multiply whose rounding drifts with length and alignment.
    ``fast`` mode uses the native kernel (decode-equivalent only) and
    honours a complex64 working ``dtype``.
    """

    def __init__(self, lag, window=None, compute_metric=False, mode="exact",
                 dtype=np.complex128):
        self.lag = int(lag)
        if self.lag <= 0:
            raise ValueError("lag must be positive")
        self.window = self.lag if window is None else int(window)
        if self.window <= 0:
            raise ValueError("window must be positive")
        self.compute_metric = bool(compute_metric)
        self.mode = validate_mode(mode)
        self.dtype = np.dtype(np.complex128 if mode == "exact" else dtype)
        #: Samples carried across block boundaries.
        self.overlap = (
            self.lag + self.window - 1 if self.compute_metric else self.lag
        )
        self._tail = np.empty(0, dtype=self.dtype)
        #: Total samples consumed so far.
        self.samples_in = 0
        self._products_out = 0
        self._metric_out = 0

    def reset(self):
        self._tail = np.empty(0, dtype=self.dtype)
        self.samples_in = 0
        self._products_out = 0
        self._metric_out = 0

    def process(self, block):
        """Consume one sample block, return the newly computable outputs."""
        block = np.asarray(block, dtype=self.dtype)
        if self.mode != "exact" and not self.compute_metric:
            # Fused streaming path: seam + interior products straight
            # from the carry and the new block, no concatenate pass.
            # Per-element bit-identical to the concatenated form (see
            # the kernel), so the invariance tests cover both paths.
            start = self._products_out
            products, self._tail = stream_lagged_products(
                block, self._tail, self.lag, self.mode
            )
            self.samples_in += block.size
            self._products_out += products.size
            return FrontEndBlock(
                products=products, start=start, metric=None, corr_phase=None
            )
        x = np.concatenate((self._tail, block)) if self._tail.size else block
        self.samples_in += block.size
        start = self._products_out

        total_products = max(0, self.samples_in - self.lag)
        new_products = total_products - self._products_out
        if new_products > 0:
            prod = _lagged_products(x, self.lag, self.mode)
            products = prod[prod.size - new_products :]
            self._products_out = total_products
        else:
            products = np.empty(0, dtype=self.dtype)

        metric = corr_phase = None
        if self.compute_metric:
            total_metric = max(0, self.samples_in - self.lag - self.window + 1)
            new_metric = total_metric - self._metric_out
            if new_metric > 0:
                m, a = autocorrelation_metric(x, self.lag, self.window)
                metric = m[m.size - new_metric :]
                corr_phase = a[a.size - new_metric :]
                self._metric_out = total_metric
            else:
                metric = np.empty(0, dtype=np.float64)
                corr_phase = np.empty(0, dtype=np.float64)

        if x.size >= self.overlap:
            self._tail = x[x.size - self.overlap :].copy()
        else:
            self._tail = x if x is not block else x.copy()
        return FrontEndBlock(
            products=products, start=start, metric=metric, corr_phase=corr_phase
        )

    def flush(self):
        """End-of-stream hook; products are never deferred here (no-op)."""
        return self.process(np.empty(0, dtype=self.dtype))


def design_lowpass(ntaps, cutoff_hz, sample_rate):
    """Hamming-windowed-sinc low-pass FIR taps with unit DC gain.

    Deliberately short filters: the SymBee plateau is only ``window + lag``
    samples long and shrinks by ``ntaps - 1`` samples after filtering, so
    channel isolation trades stopband attenuation against plateau loss
    (see ``docs/streaming.md``).
    """
    ntaps = int(ntaps)
    if ntaps < 3 or ntaps % 2 == 0:
        raise ValueError("ntaps must be an odd integer >= 3")
    if not 0.0 < cutoff_hz < sample_rate / 2.0:
        raise ValueError("cutoff must be in (0, sample_rate/2)")
    m = np.arange(ntaps, dtype=np.float64) - (ntaps - 1) / 2.0
    taps = np.sinc(2.0 * cutoff_hz / sample_rate * m)
    taps *= np.hamming(ntaps)
    return taps / taps.sum()


def _mixer_period(frequency_offset_hz, sample_rate, max_period=1 << 16):
    """Exact integer period of ``exp(-j*2*pi*f*n/fs)``, or ``None``.

    Exists whenever ``f / fs`` is rational with a small denominator —
    true for every ZigBee/WiFi channel offset (multiples of 1 MHz).
    """
    from math import gcd

    f = abs(frequency_offset_hz)
    if f == 0.0:
        return 1
    if f != int(f) or sample_rate != int(sample_rate):
        return None
    period = int(sample_rate) // gcd(int(f), int(sample_rate))
    return period if period <= max_period else None


def supported_decimations(sample_rate=None):
    """Legal channelizer decimation factors at ``sample_rate``.

    A decimation factor must divide both the autocorrelation lag (so
    the decimated product stream still realizes the 0.8 us lag as a
    whole number of samples) and the SymBee bit period (so the bit grid
    stays exactly periodic in decimated units).  The stable-plateau
    vote *window* need not divide evenly — the decoder floors it (84 ->
    10 at decimation 8, trimming four full-rate positions off the
    plateau tail) — so the legality analysis is ``gcd(lag,
    bit_period)``: its divisors are ``(1, 2, 4, 8, 16)`` at 20 Msps and
    twice that at 40 Msps.  Factors above 8 at 20 Msps are *legal* but
    leave at most 5 decimated plateau positions per bit next to a
    21-tap anti-alias FIR's edge loss — decode quality collapses, so
    the engine and CLI treat 8 as the practical ceiling.
    """
    from math import gcd

    from repro.constants import (
        SYMBEE_BIT_PERIOD_20MHZ,
        WIFI_AUTOCORR_LAG_20MHZ,
        WIFI_SAMPLE_RATE_20MHZ,
    )

    if sample_rate is None:
        sample_rate = WIFI_SAMPLE_RATE_20MHZ
    scale = int(sample_rate / WIFI_SAMPLE_RATE_20MHZ)
    g = gcd(WIFI_AUTOCORR_LAG_20MHZ * scale, SYMBEE_BIT_PERIOD_20MHZ * scale)
    return tuple(d for d in range(1, g + 1) if g % d == 0)


class ChannelizerFrontEnd:
    """One demux sub-band: mix to DC, low-pass, decimate, then products.

    Three implementation points keep the default ``exact`` chain
    block-size invariant to the last bit (plain "same formula per
    element" is not enough — numpy's SIMD transcendentals,
    FMA-contracted complex multiplies and ``np.convolve`` all change
    their exact float behaviour with array length or alignment):

    * the mixer phasor is exactly periodic whenever ``f / fs`` is
      rational (every Appendix-B channel offset is a multiple of 1 MHz,
      so the period is at most 20 samples at 20 Msps); one period is
      precomputed at construction and indexed by *global* sample
      position, so each stream index always multiplies by the exact same
      table value.  Irrational offsets fall back to a per-block
      ``np.exp`` whose SIMD-vs-scalar remainder lanes can differ by one
      ulp at block boundaries — invariance then holds only to ~1 ulp.
    * the FIR accumulates tap-by-tap over (strided) slices on the
      real/imag planes (fixed tap order) rather than via
      ``np.convolve``, whose internal summation order changes with input
      length — every filtered sample is the same fixed-order
      accumulation for any blocking.  With ``decimation > 1`` only the
      kept outputs are ever evaluated, and each is bit-identical to the
      corresponding full-rate output (the decimated exact stream is a
      strict subsample of the ``decimation=1`` exact stream).
    * every complex multiply goes through the exact kernels of
      :mod:`repro.dsp.kernels`, sidestepping numpy's FMA-contracted
      complex path whose rounding depends on buffer alignment.

    ``mode="fast"`` swaps all of the above for native kernels and folds
    the mixer into the filter: with ``wtaps[i] = taps[ntaps-1-i] *
    mix[i]`` the decimated output is ``mix[k] * (window_k . wtaps)``, so
    the wideband-rate mixing pass disappears entirely.  The output-rate
    factor ``mix[k]`` is dropped too: the mixer has linear phase, so in
    the *product* domain it collapses to one constant,
    ``mix[k] * conj(mix[k + lag]) = exp(+j 2 pi f lag / fs)`` — exposed
    as :attr:`product_rotation` for the consumer to fold into its own
    per-product rotation (fast-mode ``products`` are therefore uniformly
    rotated by its inverse until the consumer applies it; magnitudes,
    and hence nothing in the filter response, are affected).
    ``working_dtype=numpy.complex64`` additionally halves memory
    traffic.  Fast mode is decode-equivalent, not bit-equivalent.

    Product coordinates are those of the *filtered, decimated* stream:
    the chain delays the signal by the filter's ``(ntaps - 1) / 2``
    group delay, drops ``ntaps - 1`` priming samples and keeps every
    ``decimation``-th output, which shifts/scales indices relative to
    the wideband stream.  The preamble search recovers timing itself, so
    nothing downstream depends on the offset.
    """

    def __init__(
        self,
        frequency_offset_hz,
        sample_rate,
        lag,
        ntaps=21,
        cutoff_hz=1.4e6,
        decimation=1,
        mode="exact",
        working_dtype=None,
    ):
        self.frequency_offset_hz = float(frequency_offset_hz)
        self.sample_rate = float(sample_rate)
        self.taps = design_lowpass(ntaps, cutoff_hz, sample_rate)
        self.ntaps = int(ntaps)
        self.decimation = int(decimation)
        if self.decimation < 1:
            raise ValueError("decimation must be >= 1")
        if lag % self.decimation:
            raise ValueError(
                f"decimation {self.decimation} must divide the lag {lag}"
            )
        self.mode = validate_mode(mode)
        if working_dtype is None:
            self.working_dtype = np.dtype(np.complex128)
        else:
            self.working_dtype = np.dtype(working_dtype)
            if self.mode == "exact" and self.working_dtype != np.complex128:
                raise ValueError(
                    "exact mode requires a complex128 working dtype"
                )
        #: Global input-sample index of the next output's FIR window
        #: start; outputs are kept at window starts divisible by the
        #: decimation factor, so this advances in decimation steps.
        self._next_win = 0
        self._buf = np.empty(0, dtype=self.working_dtype)
        self._index = 0  # global input-sample index of the next block
        self._inner = StreamingFrontEnd(
            lag // self.decimation, mode=self.mode, dtype=self.working_dtype
        )
        period = _mixer_period(self.frequency_offset_hz, self.sample_rate)
        if period is not None:
            t = np.arange(period, dtype=np.float64)
            self._mixer_table = np.exp(
                -1j
                * (2.0 * np.pi * self.frequency_offset_hz * t / self.sample_rate)
            )
        else:
            self._mixer_table = None
        if self.mode == "fast":
            # Mixer folded into the taps.  The mixed-and-filtered output
            # at window start k is
            #   y[k] = sum_i taps[ntaps-1-i] * mix[k+i] * x[k+i]
            #        = mix[k] * sum_i (taps[ntaps-1-i] * mix[i]) * x[k+i]
            # so dotting raw windows with wtaps[i] = taps[ntaps-1-i] *
            # mix[i] reproduces the exact chain up to the output-rate
            # factor mix[k] — which the product domain reduces to the
            # constant product_rotation below, so it is never applied
            # per sample at all.
            i = np.arange(self.ntaps, dtype=np.float64)
            mix_i = np.exp(
                -1j * (2.0 * np.pi * self.frequency_offset_hz * i / self.sample_rate)
            )
            wtaps = self.taps[::-1] * mix_i
            # polyphase_decimate_fast dots windows with its taps[::-1],
            # so hand it the pre-reversed weight vector.
            self._fast_taps = wtaps[::-1].copy()
            if self.working_dtype == np.complex64:
                self._fast_taps = self._fast_taps.astype(np.complex64)
            #: What a product formed on this front end's output must be
            #: multiplied by to match the exact mixed chain:
            #: mix[k] * conj(mix[k + lag]) = exp(+j 2 pi f lag / fs),
            #: constant because the mixer's phase is linear in k.
            self.product_rotation = complex(
                np.exp(
                    1j
                    * (2.0 * np.pi * self.frequency_offset_hz * lag / self.sample_rate)
                )
            )
        else:
            self._fast_taps = None
            self.product_rotation = 1.0

    @property
    def samples_in(self):
        return self._index

    def reset(self):
        self._buf = np.empty(0, dtype=self.working_dtype)
        self._next_win = 0
        self._index = 0
        self._inner.reset()

    def _mix_exact(self, block):
        """Global-index mixer multiply (the exact-mode front half)."""
        if self._mixer_table is not None:
            idx = np.arange(self._index, self._index + block.size, dtype=np.int64)
            idx %= self._mixer_table.size
            return exact_cmul(block, self._mixer_table[idx])
        t = np.arange(self._index, self._index + block.size, dtype=np.float64)
        return exact_cmul(
            block,
            np.exp(
                -1j
                * (2.0 * np.pi * self.frequency_offset_hz * t / self.sample_rate)
            ),
        )

    def _emittable(self, z_size):
        """How many buffered outputs this mode emits mid-stream.

        Exact mode emits every computable output.  Fast mode with
        ``decimation > 1`` withholds outputs whose zero-padded polyphase
        block window runs past the buffer (at most one): those would
        fall back to a direct dot whose rounding differs from the GEMM
        band sum, and *which* positions take the fallback depends on
        where the stream was cut — the one ulp-level leak of block
        boundaries into fast-mode products.  Deferring them until they
        are GEMM-computable (or to :meth:`flush`, where the boundary is
        the cut-independent end of stream) makes fast products
        cut-invariant too.
        """
        total = z_size - self.ntaps + 1
        if total <= 0:
            return 0
        m = 1 + (total - 1) // self.decimation
        if self.mode == "exact" or self.decimation == 1:
            return m
        nb = -(-self.ntaps // self.decimation)
        return min(m, max(z_size // self.decimation - nb + 1, 0))

    def process(self, block):
        """Consume one wideband block, return this sub-band's new products."""
        block = np.asarray(block, dtype=self.working_dtype)
        if self.mode == "exact":
            # Mix first (global-index table), buffer the mixed stream.
            new = self._mix_exact(np.asarray(block, dtype=np.complex128))
        else:
            # Fast mode buffers the raw stream; the mixer rides in the
            # folded taps, and the residual per-output factor collapses
            # to the constant product_rotation at the product level.
            new = block
        self._index += block.size
        z = np.concatenate((self._buf, new)) if self._buf.size else new
        # The buffer always starts at global index _next_win, so window
        # starts are local 0, D, 2D, ...
        m = self._emittable(z.size)
        if m < 1:
            self._buf = z if z is not new else z.copy()
            return self._inner.process(np.empty(0, dtype=self.working_dtype))
        if self.mode == "exact":
            filtered = polyphase_decimate(z, self.taps, self.decimation, mode="exact")
        else:
            filtered = polyphase_decimate(
                z, self._fast_taps, self.decimation, mode="fast", trailing="defer"
            )
        consumed = m * self.decimation
        self._next_win += consumed
        self._buf = z[consumed:].copy()
        return self._inner.process(filtered)

    def flush(self):
        """Emit any deferred tail outputs at end-of-stream.

        Fast mode's mid-stream deferral (see :meth:`_emittable`) can
        leave up to one computable output in the buffer; the stream end
        is the same for every blocking, so finishing it with the direct
        dot here is deterministic.  Exact mode never defers — this is a
        no-op returning an empty block.
        """
        z = self._buf
        total = z.size - self.ntaps + 1
        if total <= 0 or self.mode == "exact":
            return self._inner.process(np.empty(0, dtype=self.working_dtype))
        m = 1 + (total - 1) // self.decimation
        filtered = polyphase_decimate(
            z, self._fast_taps, self.decimation, mode="fast"
        )
        consumed = m * self.decimation
        self._next_win += consumed
        self._buf = z[consumed:].copy()
        return self._inner.process(filtered)


class FastChannelBank:
    """Drive several fast-mode channelizers with one shared GEMM.

    In fast mode every :class:`ChannelizerFrontEnd` of a demux bank
    buffers the *same* raw wideband stream with the same filter length
    and decimation factor — only the mixer-folded tap vectors (and the
    per-channel product state) differ.  Filtering the channels one at a
    time therefore repeats the dtype conversion, the tail concatenate,
    the carry copy and the strided block view C times on identical
    data.  The bank keeps one copy of that shared raw buffer and builds
    the strided block view once per block; each channel then runs its
    own ``(n, D) @ (D, nb)`` polyphase product against the shared view.

    :meth:`process_block` is *bit-identical* to calling each front
    end's ``process`` on the same blocks: the per-channel matrix
    product has exactly the shape ``polyphase_decimate_fast`` issues
    (BLAS kernels are shape-dependent, so a single stacked
    ``(n, D) @ (D, C * nb)`` product would diverge at the ulp level
    from the single-channel path that parallel per-channel workers
    take), the band-sum accumulation order matches the kernel, and the
    per-channel lagged-product state is still owned by each front end's
    inner :class:`StreamingFrontEnd`.

    Only worth it for ``decimation > 1`` (at ``D == 1`` the polyphase
    weight matrix degenerates to one column per tap); construction
    rejects anything but fast-mode front ends with shared geometry.
    """

    def __init__(self, front_ends):
        front_ends = list(front_ends)
        if len(front_ends) < 2:
            raise ValueError("FastChannelBank needs at least two front ends")
        first = front_ends[0]
        for fe in front_ends:
            if fe.mode != "fast":
                raise ValueError("FastChannelBank requires fast-mode front ends")
            if (
                fe.ntaps != first.ntaps
                or fe.decimation != first.decimation
                or fe.working_dtype != first.working_dtype
            ):
                raise ValueError(
                    "FastChannelBank front ends must share ntaps, decimation "
                    "and working dtype"
                )
        if first.decimation < 2:
            raise ValueError("FastChannelBank requires decimation >= 2")
        self.front_ends = front_ends
        self.ntaps = first.ntaps
        self.decimation = first.decimation
        self.working_dtype = first.working_dtype
        d = self.decimation
        nb = -(-self.ntaps // d)
        self._nb = nb
        # Per-channel window-dot vectors (the kernels dot windows with
        # taps[::-1], and _fast_taps is handed to them pre-reversed)
        # and their zero-padded (nb, D) polyphase weight matrices.  The
        # dot vector keeps the exact memory layout the single-channel
        # kernel uses (reversed view, or a contiguous astype copy at
        # complex64) — BLAS dot products are stride-dependent at the
        # ulp level, and the tails must stay bit-identical to it.
        self._wdots = []
        self._weights = []
        for fe in front_ends:
            wdot = fe._fast_taps[::-1]
            if self.working_dtype == np.complex64:
                wdot = wdot.astype(np.complex64)
            self._wdots.append(wdot)
            padded = np.zeros(nb * d, dtype=wdot.dtype)
            padded[: self.ntaps] = wdot
            self._weights.append(padded.reshape(nb, d))
        self._buf = np.empty(0, dtype=self.working_dtype)
        self._index = 0

    def process_block(self, block):
        """Filter one wideband block for every channel at once.

        Returns one :class:`FrontEndBlock` per front end, in
        construction order — the same objects each front end's own
        ``process`` would have produced for this block sequence.
        """
        block = np.asarray(block, dtype=self.working_dtype)
        self._index += block.size
        z = np.concatenate((self._buf, block)) if self._buf.size else block
        # Same deferred-emission count as each front end's own process
        # (all front ends share geometry, so one count serves all) —
        # every emitted output goes through the GEMM band sum, keeping
        # fast products cut-invariant and the bank bit-identical to the
        # solo path.
        m_emit = self.front_ends[0]._emittable(z.size)
        if m_emit < 1:
            self._buf = z if z is not block else z.copy()
            empty = np.empty(0, dtype=self.working_dtype)
            return [fe._inner.process(empty) for fe in self.front_ends]
        d = self.decimation
        outs = self._filter_all(z, m_emit)
        consumed = m_emit * d
        self._buf = z[consumed:].copy()
        blocks = []
        for fe, out in zip(self.front_ends, outs):
            fe._next_win += consumed
            fe._index = self._index
            blocks.append(fe._inner.process(out))
        return blocks

    def flush(self):
        """Emit the deferred tail outputs at end-of-stream.

        Mirrors :meth:`ChannelizerFrontEnd.flush` per channel — the
        same kernel call on the same buffered tail, so a bank run stays
        bit-identical to solo runs through the end of the stream.
        """
        z = self._buf
        total = z.size - self.ntaps + 1
        if total <= 0:
            empty = np.empty(0, dtype=self.working_dtype)
            return [fe._inner.process(empty) for fe in self.front_ends]
        d = self.decimation
        m = 1 + (total - 1) // d
        consumed = m * d
        outs = [
            polyphase_decimate(z, fe._fast_taps, d, mode="fast")
            for fe in self.front_ends
        ]
        self._buf = z[consumed:].copy()
        blocks = []
        for fe, out in zip(self.front_ends, outs):
            fe._next_win += consumed
            blocks.append(fe._inner.process(out))
        return blocks

    def _filter_all(self, z, m_main):
        """Band-sum GEMM outputs for every channel (all GEMM-covered).

        The caller's ``m_main`` never exceeds ``n_blocks - nb + 1``
        (that is what :meth:`ChannelizerFrontEnd._emittable` returns),
        so no output needs the direct-dot fallback whose rounding
        differs from the band sum.
        """
        d, nb = self.decimation, self._nb
        n_blocks = z.size // d
        st = z.strides[0]
        blocks = np.lib.stride_tricks.as_strided(
            z, (n_blocks, d), (d * st, st)
        )
        outs = []
        for weight in self._weights:
            v = blocks @ weight.T
            out = np.empty(m_main, dtype=v.dtype)
            out[:] = v[:m_main, 0]
            for b in range(1, nb):
                out += v[b : m_main + b, b]
            outs.append(out)
        return outs
