"""Block-wise idle-listening front ends with exact tail state.

The batch pipeline hands a whole capture to
:meth:`repro.core.decoder.SymBeeDecoder.phasor_stream` at once; a
continuously listening receiver only ever sees fixed-size sample blocks.
Both autocorrelation quantities the receiver derives are *local*:

* the product ``p[n] = x[n] * conj(x[n + lag])`` pairs exactly two
  samples, so carrying the last ``lag`` samples across block boundaries
  reproduces the batch stream **bit-identically** — every element is the
  same two-operand multiply regardless of where blocks were cut;
* the Schmidl-Cox metric at ``n`` windows ``lag + window`` samples, so a
  ``lag + window - 1`` overlap lets each block's metric entries be
  recomputed exactly over their own windows.  (The batch implementation
  uses one whole-capture cumulative sum, so metric values can differ
  from the streaming ones by float accumulation order — the same
  caveat :func:`repro.dsp.runs.sliding_window_sum` already documents.
  The decode path never consumes the metric, only the products.)

:class:`ChannelizerFrontEnd` adds per-ZigBee-channel isolation for the
multi-sender demux: because every overlapping WiFi/ZigBee pair shares
the *same* Appendix-B correction (+4pi/5), concurrent senders on
different ZigBee channels land on identical product-domain rotations and
cannot be separated after the autocorrelation.  Separation has to happen
before it: mix the 5 MHz-spaced sub-band to DC, low-pass away the other
sub-bands, then form products on the filtered stream (which then needs
no CFO correction at all — the channel sits at its transmit baseband).
"""

from dataclasses import dataclass

import numpy as np

from repro.wifi.idle_listening import autocorrelation_metric


def exact_cmul(a, b):
    """Complex multiply decomposed into single-rounding real ops.

    numpy's native complex-multiply kernel contracts its internal
    multiply-adds into FMAs whose peel/remainder lanes depend on buffer
    alignment and length, so ``a * b`` can differ by one ulp between two
    calls over the *same* element — enough to break bit-exact block-size
    invariance.  Real multiply/add/subtract ufuncs are each a single
    correctly-rounded IEEE operation in every lane, so building the
    product from them is deterministic for any blocking, alignment or
    SIMD path.  (The result is the textbook four-multiply form, which an
    FMA kernel does *not* reproduce — consistency, not agreement with
    ``np.multiply``, is the point.)
    """
    ar, ai = a.real, a.imag
    br, bi = b.real, b.imag
    out = np.empty(np.broadcast_shapes(np.shape(a), np.shape(b)), dtype=np.complex128)
    out.real = ar * br - ai * bi
    out.imag = ar * bi + ai * br
    return out


def lagged_products(x, lag):
    """Deterministic ``x[n] * conj(x[n + lag])`` (see :func:`exact_cmul`).

    Semantically :meth:`repro.core.decoder.SymBeeDecoder.raw_products`,
    but decomposed into real ufunc ops so every element matches scalar
    complex arithmetic bit-for-bit regardless of array length or
    alignment — the property the streaming front ends' invariance
    guarantee rests on.
    """
    lag = int(lag)
    if lag <= 0:
        raise ValueError("lag must be positive")
    n = x.size - lag
    if n <= 0:
        return np.empty(0, dtype=np.complex128)
    a, b = x[:n], x[lag:]
    out = np.empty(n, dtype=np.complex128)
    # conj folded in: (ar + j*ai) * (br - j*bi)
    out.real = a.real * b.real + a.imag * b.imag
    out.imag = a.imag * b.real - a.real * b.imag
    return out


@dataclass(frozen=True)
class FrontEndBlock:
    """Newly computed front-end outputs for one input block.

    ``start`` is the global stream index (product coordinates: product
    ``k`` pairs samples ``k`` and ``k + lag``) of ``products[0]``.
    ``metric``/``corr_phase`` are ``None`` unless the front end was built
    with ``compute_metric=True``; their global coordinates coincide with
    the product coordinates (metric ``k`` windows samples ``k ..
    k + lag + window``).
    """

    products: np.ndarray
    start: int
    metric: "np.ndarray | None" = None
    corr_phase: "np.ndarray | None" = None


class StreamingFrontEnd:
    """Chunked autocorrelation products (and optionally the S&C metric).

    Feed arbitrary-size blocks to :meth:`process`; the concatenation of
    the returned ``products`` arrays is bit-identical to
    ``lagged_products(whole_stream, lag)`` for any blocking, including
    blocks shorter than the lag — every element is scalar-exact complex
    arithmetic (see :func:`exact_cmul`), unlike numpy's FMA-contracted
    native multiply whose rounding drifts with length and alignment.
    """

    def __init__(self, lag, window=None, compute_metric=False):
        self.lag = int(lag)
        if self.lag <= 0:
            raise ValueError("lag must be positive")
        self.window = self.lag if window is None else int(window)
        if self.window <= 0:
            raise ValueError("window must be positive")
        self.compute_metric = bool(compute_metric)
        #: Samples carried across block boundaries.
        self.overlap = (
            self.lag + self.window - 1 if self.compute_metric else self.lag
        )
        self._tail = np.empty(0, dtype=np.complex128)
        #: Total samples consumed so far.
        self.samples_in = 0
        self._products_out = 0
        self._metric_out = 0

    def reset(self):
        self._tail = np.empty(0, dtype=np.complex128)
        self.samples_in = 0
        self._products_out = 0
        self._metric_out = 0

    def process(self, block):
        """Consume one sample block, return the newly computable outputs."""
        block = np.asarray(block, dtype=np.complex128)
        x = np.concatenate((self._tail, block)) if self._tail.size else block
        self.samples_in += block.size
        start = self._products_out

        total_products = max(0, self.samples_in - self.lag)
        new_products = total_products - self._products_out
        if new_products > 0:
            prod = lagged_products(x, self.lag)
            products = prod[prod.size - new_products :]
            self._products_out = total_products
        else:
            products = np.empty(0, dtype=np.complex128)

        metric = corr_phase = None
        if self.compute_metric:
            total_metric = max(0, self.samples_in - self.lag - self.window + 1)
            new_metric = total_metric - self._metric_out
            if new_metric > 0:
                m, a = autocorrelation_metric(x, self.lag, self.window)
                metric = m[m.size - new_metric :]
                corr_phase = a[a.size - new_metric :]
                self._metric_out = total_metric
            else:
                metric = np.empty(0, dtype=np.float64)
                corr_phase = np.empty(0, dtype=np.float64)

        if x.size >= self.overlap:
            self._tail = x[x.size - self.overlap :].copy()
        else:
            self._tail = x if x is not block else x.copy()
        return FrontEndBlock(
            products=products, start=start, metric=metric, corr_phase=corr_phase
        )


def design_lowpass(ntaps, cutoff_hz, sample_rate):
    """Hamming-windowed-sinc low-pass FIR taps with unit DC gain.

    Deliberately short filters: the SymBee plateau is only ``window + lag``
    samples long and shrinks by ``ntaps - 1`` samples after filtering, so
    channel isolation trades stopband attenuation against plateau loss
    (see ``docs/streaming.md``).
    """
    ntaps = int(ntaps)
    if ntaps < 3 or ntaps % 2 == 0:
        raise ValueError("ntaps must be an odd integer >= 3")
    if not 0.0 < cutoff_hz < sample_rate / 2.0:
        raise ValueError("cutoff must be in (0, sample_rate/2)")
    m = np.arange(ntaps, dtype=np.float64) - (ntaps - 1) / 2.0
    taps = np.sinc(2.0 * cutoff_hz / sample_rate * m)
    taps *= np.hamming(ntaps)
    return taps / taps.sum()


def _mixer_period(frequency_offset_hz, sample_rate, max_period=1 << 16):
    """Exact integer period of ``exp(-j*2*pi*f*n/fs)``, or ``None``.

    Exists whenever ``f / fs`` is rational with a small denominator —
    true for every ZigBee/WiFi channel offset (multiples of 1 MHz).
    """
    from math import gcd

    f = abs(frequency_offset_hz)
    if f == 0.0:
        return 1
    if f != int(f) or sample_rate != int(sample_rate):
        return None
    period = int(sample_rate) // gcd(int(f), int(sample_rate))
    return period if period <= max_period else None


class ChannelizerFrontEnd:
    """One demux sub-band: mix to DC, low-pass, then products.

    Three implementation points keep the chain block-size invariant to
    the last bit (plain "same formula per element" is not enough —
    numpy's SIMD transcendentals, FMA-contracted complex multiplies and
    ``np.convolve`` all change their exact float behaviour with array
    length or alignment):

    * the mixer phasor is exactly periodic whenever ``f / fs`` is
      rational (every Appendix-B channel offset is a multiple of 1 MHz,
      so the period is at most 20 samples at 20 Msps); one period is
      precomputed at construction and indexed by *global* sample
      position, so each stream index always multiplies by the exact same
      table value.  Irrational offsets fall back to a per-block
      ``np.exp`` whose SIMD-vs-scalar remainder lanes can differ by one
      ulp at block boundaries — invariance then holds only to ~1 ulp.
    * the FIR accumulates tap-by-tap over shifted slices on the
      real/imag planes (fixed tap order) rather than via
      ``np.convolve``, whose internal summation order changes with input
      length — every filtered sample is the same fixed-order
      accumulation for any blocking;
    * every complex multiply goes through :func:`exact_cmul` /
      :func:`lagged_products`, sidestepping numpy's FMA-contracted
      complex kernel whose rounding depends on buffer alignment.

    Product coordinates are those of the *filtered* stream: the chain
    delays the signal by the filter's ``(ntaps - 1) / 2`` group delay and
    drops ``ntaps - 1`` priming samples, which shifts indices relative to
    the wideband stream.  The preamble search recovers timing itself, so
    nothing downstream depends on the offset.
    """

    def __init__(
        self,
        frequency_offset_hz,
        sample_rate,
        lag,
        ntaps=21,
        cutoff_hz=1.4e6,
    ):
        self.frequency_offset_hz = float(frequency_offset_hz)
        self.sample_rate = float(sample_rate)
        self.taps = design_lowpass(ntaps, cutoff_hz, sample_rate)
        self.ntaps = int(ntaps)
        self._fir_tail = np.empty(0, dtype=np.complex128)
        self._index = 0  # global input-sample index of the next block
        self._inner = StreamingFrontEnd(lag)
        period = _mixer_period(self.frequency_offset_hz, self.sample_rate)
        if period is not None:
            t = np.arange(period, dtype=np.float64)
            self._mixer_table = np.exp(
                -1j
                * (2.0 * np.pi * self.frequency_offset_hz * t / self.sample_rate)
            )
        else:
            self._mixer_table = None

    @property
    def samples_in(self):
        return self._index

    def reset(self):
        self._fir_tail = np.empty(0, dtype=np.complex128)
        self._index = 0
        self._inner.reset()

    def process(self, block):
        """Consume one wideband block, return this sub-band's new products."""
        block = np.asarray(block, dtype=np.complex128)
        if self._mixer_table is not None:
            idx = np.arange(self._index, self._index + block.size, dtype=np.int64)
            idx %= self._mixer_table.size
            mixed = exact_cmul(block, self._mixer_table[idx])
        else:
            t = np.arange(
                self._index, self._index + block.size, dtype=np.float64
            )
            mixed = exact_cmul(
                block,
                np.exp(
                    -1j
                    * (
                        2.0
                        * np.pi
                        * self.frequency_offset_hz
                        * t
                        / self.sample_rate
                    )
                ),
            )
        self._index += block.size
        z = (
            np.concatenate((self._fir_tail, mixed))
            if self._fir_tail.size
            else mixed
        )
        if z.size < self.ntaps:
            self._fir_tail = z if z is not mixed else z.copy()
            return self._inner.process(np.empty(0, dtype=np.complex128))
        m = z.size - self.ntaps + 1
        # convolve(z, taps, "valid")[k] = sum_j taps[j] * z[k + ntaps-1-j],
        # accumulated tap-by-tap on the real/imag planes so each output
        # element is the same fixed sequence of single-rounding real
        # multiply-adds no matter how the stream was blocked.
        acc_r = np.zeros(m, dtype=np.float64)
        acc_i = np.zeros(m, dtype=np.float64)
        for j in range(self.ntaps):
            shift = self.ntaps - 1 - j
            s = z[shift : shift + m]
            acc_r += self.taps[j] * s.real
            acc_i += self.taps[j] * s.imag
        filtered = np.empty(m, dtype=np.complex128)
        filtered.real = acc_r
        filtered.imag = acc_i
        self._fir_tail = z[z.size - (self.ntaps - 1) :].copy()
        return self._inner.process(filtered)
