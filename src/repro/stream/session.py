"""Per-channel streaming decode session (preamble -> header -> body).

A :class:`StreamSession` consumes the CFO-compensated phasor-product
stream of one ZigBee channel in arbitrary-size pieces and emits complete
SymBee frames.  Every decision is a function of the *absolute* product
stream only, never of where pushes were cut, which is what makes
streaming decode bit-identical to a single whole-capture call:

* **Search** runs over deterministic scan chunks.  The session waits
  until the chunk ``[o, o + stride + span + window)`` is fully buffered
  (``o`` the scan origin, ``stride = scan_stride_bits * bit_period``,
  ``span = (folds - 1) * bit_period``), applies the
  :func:`repro.core.preamble.capture_preamble` gate cascade to it, and
  accepts a capture only in the first ``stride`` products — later hits
  are re-found by the next chunk, whose origin is ``o + stride``
  regardless of blocking.  (The capture gates are slice-relative, so
  scanning *fixed* chunks is what keeps them deterministic.)
* **Header** decodes the 24 header bits as soon as their last vote
  window is buffered, validates version / type / length, and on a bogus
  header resumes searching at ``n0 + bit_period`` (one bit past the
  false preamble).
* **Body** waits for the full frame (header + data + CRC vote windows),
  majority-votes every bit in one pass, parses, emits, and resumes
  searching right after the frame.

``finish()`` flushes at end-of-stream: the final partial chunk is
scanned once (accepting any position — no later chunk will see it), and
a capture whose frame ran off the stream is counted as partial.

**The incremental scanner (PR 5).**  Scanning chunk-by-chunk through
:func:`capture_preamble` re-derives unit phasors, fold profiles and
window counts for every chunk — and a header reject rewinds the origin
by one bit, so signal-dense streams re-derive the same region dozens of
times.  The session instead maintains :class:`_DerivedStreams`: rolling,
absolute-indexed caches of every quantity the gate cascade needs, each
computed once per product.  The cache arithmetic is deliberately
blocking-invariant — elementwise single-rounding ops, fixed-order fold
sums, and prefix sums whose accumulation order is the stream order
itself (``np.cumsum`` is a strict left fold, so continuing it from a
running total is bit-identical to one whole-stream pass) — so cache
slices taken at any moment contain the same floats for any push sizes.
:meth:`StreamSession._search_scan` then evaluates the whole cascade for
every buffered chunk in a handful of vectorized passes (count floor,
relative coherence, concentration, cluster-peak anchor — the same
decisions in the same order as ``capture_preamble``, including its
outcome metrics), touching each product a constant number of times no
matter how often header rejects rewind across it.  The windowed
coherence/concentration sums come from prefix differences rather than
per-chunk summation, so their last ~1e-11 (float64) differs from
``capture_preamble``'s; the gates have 0.2 of slack and the values are
used consistently, so decisions are deterministic and block-size
invariant either way.

**The scan-kernel registry (PR 10).**  ``_search_scan`` is bound at
construction from :mod:`repro.stream.scan`: ``grouped`` keeps the PR-5
cascade (dense gates per 8-chunk group, per-chunk Python loop) as the
reference, ``batched`` (default) evaluates every gate over a strided
2-D view of all buffered chunks in one vector dispatch per gate, and
``fft`` runs the batched cascade over the overlap-save FFT fold
profile.  ``grouped`` and ``batched`` compare exactly the same floats
chunk by chunk, so their decisions — and their outcome metrics — are
bit-identical by construction.  When the metrics registry is disabled
the batched kernel additionally fuses the header gate into the scan
loop: a scan hit evaluates the 24-bit header word in place and a
reject rewinds the origin without leaving the loop, skipping the
search→header→search state dispatch that dominates signal-dense
streams (with metrics enabled every hit routes through the reference
state machine so the metric stream is unchanged).

**Working dtype.**  ``dtype=numpy.complex64`` (the fast kernel mode's
optional float32 working precision) halves the memory traffic of every
cache.  The float gate caches then carry ~1e-3 of prefix-cancellation
error after a million products instead of ~1e-11 — still far inside the
0.2 gate slack, but growing linearly with session length, so very long
unbroken float32 sessions (beyond ~10^8 products) should be avoided;
``exact`` sessions must use complex128, which is good past 10^15.  The
integer caches (vote counts, fold-negativity counts) are exact at any
precision; they are kept in int32, which bounds a single session at
2^31 products (~9 days of one decimated sub-band) — beyond any test or
bench horizon, and a deliberate trade for halved prefix traffic.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_PREAMBLE_BITS
from repro.core.frame import (
    FRAME_TYPE_ACK,
    FRAME_TYPE_TRANSPORT_BASE,
    MAX_DATA_BITS,
    MAX_KNOWN_FRAME_TYPE,
    VERSION,
    frame_overhead_bits,
    parse_frame_bits,
)
from repro.core.preamble import (
    _COHERENCE,
    _HIT,
    _MISS_COHERENCE,
    _MISS_CONCENTRATION,
    _MISS_COUNT,
    capture_preamble,
)
from repro.dsp.kernels import preamble_fold
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.stream.scan import DEFAULT_SCAN_KERNEL, validate_scan_kernel

_HEADER_BITS = 24

#: Chunks evaluated per dense scan pass.  Enough to amortize the vector
#: dispatches while scanning noise, small enough that a capture or a
#: header-reject cycle near the origin never pays for dense statistics
#: across everything buffered behind it.
_SCAN_GROUP_CHUNKS = 8

#: Batched scanner pass sizing: the first pass of every ``_search`` call
#: covers ``_SCAN_BATCH_MIN`` chunks (the post-header-reject rescan cost
#: stays bounded exactly like the grouped kernel's cap), then each
#: further pass in the same call grows by ``_SCAN_BATCH_GROWTH`` up to
#: ``_SCAN_BATCH_MAX`` — deep buffers (large blocks, long noise gaps)
#: amortize the dispatches over wider and wider 2-D batches.  Batch
#: sizing cannot change any decision: every gate is a pure function of
#: one chunk's cache slice.
_SCAN_BATCH_MIN = 8
_SCAN_BATCH_GROWTH = 4
_SCAN_BATCH_MAX = 64

#: Shared empty row-index array for batches with nothing to look at.
_EMPTY_ROWS = np.empty(0, dtype=np.intp)


def _unit_from_products(chunk, fill, out=None):
    """Deterministic unit phasors (zero products take ``fill``).

    Magnitude as ``sqrt(re*re + im*im)`` and one real divide per plane —
    every element is the same sequence of single-rounding real ufunc
    ops, so the result is bit-identical no matter how the stream was
    blocked or how the buffer happens to be aligned.  numpy's
    reciprocal-then-complex-multiply path in the core decoder is faster
    but rounds differently depending on SIMD lane, which would leak
    block-size dependence into the capture coherence.  Works in the
    chunk's own precision (complex64 in fast float32 sessions).
    """
    mag = chunk.real * chunk.real
    mag += chunk.imag * chunk.imag
    np.sqrt(mag, out=mag)
    zero = mag == 0.0
    has_zero = bool(zero.any())
    if has_zero:
        mag[zero] = 1.0
    unit = np.empty(chunk.size, dtype=chunk.dtype) if out is None else out
    unit.real = chunk.real / mag
    unit.imag = chunk.imag / mag
    if has_zero:
        unit[zero] = fill
    return unit


def _unit_phasors(decoder, chunk):
    """:func:`_unit_from_products` with the decoder's zero-product fill.

    Same semantics as :meth:`repro.core.decoder.SymBeeDecoder.unit_phasors`
    (zero-amplitude products take the post-compensation zero-phase
    phasor), used for the end-of-stream partial chunk that still goes
    through :func:`repro.core.preamble.capture_preamble` directly.
    """
    fill = decoder.rotation
    return _unit_from_products(chunk, 1.0 + 0.0j if fill is None else fill)


_FRAMES = REGISTRY.counter("stream.session.frames")
_CRC_FAILED = REGISTRY.counter("stream.session.crc_failed")
_HEADER_REJECTS = REGISTRY.counter("stream.session.header_rejects")
_PARTIAL_EOF = REGISTRY.counter("stream.session.partial_at_eof")
#: Products buffered past a frame's last vote window when it was emitted
#: — the decode latency floor in samples (one bit period = 640).
_LATENCY = REGISTRY.histogram(
    "stream.session.frame_latency",
    edges=(640, 2560, 5120, 10240, 20480, 40960, 81920, 163840),
)


class _StreamBuffer:
    """Growable product buffer addressed by absolute stream index."""

    def __init__(self, dtype=np.complex128):
        self._data = np.empty(8192, dtype=dtype)
        self._start = 0   # physical index of absolute index ``base``
        self._len = 0
        self.base = 0     # absolute stream index of the oldest kept product

    @property
    def end(self):
        """One past the newest buffered absolute index."""
        return self.base + self._len

    def alloc(self, n):
        """Append ``n`` uninitialised entries, return the view to fill.

        Lets producers compute straight into the buffer (cumsums, fold
        sums) instead of building a temporary and copying it in.
        """
        if self._start + self._len + n > self._data.size:
            if self._start:
                # Compact trimmed space before growing.
                self._data[: self._len] = self._data[
                    self._start : self._start + self._len
                ]
                self._start = 0
            if self._len + n > self._data.size:
                cap = self._data.size
                while cap < self._len + n:
                    cap *= 2
                grown = np.empty(cap, dtype=self._data.dtype)
                grown[: self._len] = self._data[: self._len]
                self._data = grown
        lo = self._start + self._len
        self._len += n
        return self._data[lo : lo + n]

    def append(self, arr):
        if arr.size:
            self.alloc(arr.size)[:] = arr

    def trim(self, lo):
        """Forget everything below absolute index ``lo`` (O(1))."""
        drop = min(max(lo - self.base, 0), self._len)
        self._start += drop
        self.base += drop
        self._len -= drop

    def skip(self, n):
        """Advance an *empty* buffer past ``n`` absolute indices.

        Lets a lazily-maintained stream rejoin a producer that moved
        ahead while nothing was being recorded, without storing
        placeholders for the skipped range.
        """
        if self._len:
            raise ValueError("skip requires an empty buffer")
        self.base += n

    def at(self, i):
        """Scalar element at absolute index ``i`` (must be buffered)."""
        if i < self.base or i >= self.end:
            raise IndexError(
                f"index {i} outside buffered [{self.base}, {self.end})"
            )
        return self._data[self._start + (i - self.base)]

    def view(self, lo, hi):
        """Zero-copy view of absolute range ``[lo, hi)`` (must be buffered)."""
        if lo < self.base or hi > self.end:
            raise IndexError(
                f"range [{lo}, {hi}) outside buffered [{self.base}, {self.end})"
            )
        a = self._start + (lo - self.base)
        return self._data[a : a + (hi - lo)]


class _PrefixSum:
    """Rolling prefix sums: entry ``i`` is the sum over stream ``[0, i)``.

    Extending continues numpy's sequential accumulation from the stored
    running total, which is bit-identical to a single whole-stream
    cumsum for any chunking — float dtypes included, since ``np.cumsum``
    is a strict left fold and seeding the chunk's first element with the
    saved total literally resumes that fold in place.
    Windowed sums anywhere in the stream are then two gathers and a
    subtract, and — because every entry is a function of absolute
    position only — they are the same values no matter how the stream
    was pushed.  The price for floats is the usual large-prefix
    cancellation: a window sum loses about as many digits as the prefix
    has grown — see the module docstring for the per-dtype horizon.
    """

    def __init__(self, dtype):
        dtype = np.dtype(dtype)
        self._buf = _StreamBuffer(dtype)
        self._buf.append(np.zeros(1, dtype=dtype))
        # Running total kept outside the buffer: trimming may drop every
        # entry (the stream can be forgotten past the newest prefix),
        # and the continuation seed must survive that.
        self._total = dtype.type(0)

    @property
    def end(self):
        return self._buf.end

    @property
    def base(self):
        """Oldest absolute index still viewable (the trim floor)."""
        return self._buf.base

    def extend(self, values):
        n = values.size
        if n == 0:
            return
        tail = self._buf.alloc(n)
        tail[:] = values
        # Seeding the first element makes the in-place cumsum the strict
        # left fold ((total + v0) + v1) + ... — for floats, bit-identical
        # to cumsumming the whole stream in one call (see the module
        # docstring); for integers, exact regardless.
        tail[0] += self._total
        np.cumsum(tail, out=tail)
        self._total = tail[-1]

    def view(self, lo, hi):
        return self._buf.view(lo, hi)

    def at(self, i):
        """Scalar prefix entry at absolute index ``i``."""
        return self._buf.at(i)

    def trim(self, lo):
        self._buf.trim(lo)

    def skip_to(self, index):
        """Re-seed after the value stream jumped ahead (empty buffer).

        Records a fresh prefix entry at absolute ``index`` holding the
        running total, so later extends continue the fold there.  The
        skipped values are simply never counted — window sums taken
        entirely past ``index`` are unaffected (the missing constant
        cancels in every difference).
        """
        self._buf.skip(index - self._buf.end)
        self._buf.alloc(1)[0] = self._total


class _DerivedStreams:
    """Rolling absolute-indexed derived streams behind the scanner.

    Everything the capture gate cascade and the synchronized decode
    consume, computed once per product as the stream arrives:

    * ``mask_prefix`` — prefix counts of ``product.imag >= 0`` (integer,
      exact): any bit's vote count is one prefix difference.
    * unit phasors (kept only far enough back to extend the profile).
    * the circular fold profile (fixed-order sum of ``folds`` shifted
      unit-phasor streams), immediately reduced to:

      - ``count_prefix`` — prefix counts of negative fold angles
        (the same signed-zero-aware negativity test
        ``capture_preamble`` uses; integer, exact),
      - ``coherence_prefix`` — prefix sums of the fold magnitude,
      - ``concentration_prefix`` — prefix sums of the per-position
        *unit* fold phasor (complex),

      after which the profile values themselves are dropped.

    All of it is blocking-invariant by construction (see the module
    docstring), so :meth:`StreamSession._search_scan` can gate any chunk
    from slices without re-deriving anything.  Float caches follow the
    session's working dtype (float32 halves their traffic, at the
    precision noted in the module docstring).

    Fast-mode sessions use the same dense caches as exact ones: the
    fast kernels' defer/flush contract (see
    :func:`repro.dsp.kernels.polyphase_decimate_fast`) makes their
    products blocking-invariant, so the prefix arithmetic here carries
    the invariance through unchanged.  A lazily-extended variant that
    derived the float gates only over scanned regions was measured
    slower at every signal density — the count gate fires for nearly
    every noise chunk, so coherence ends up densely covered anyway and
    the on-demand dispatch overhead is pure loss.
    """

    def __init__(
        self,
        decoder,
        folds,
        dtype=np.complex128,
        fold_mode="exact",
        capture_floor=None,
        coherence_min=0.5,
        scan_stride=None,
    ):
        self.bit_period = decoder.bit_period
        self.window = decoder.window
        self.folds = int(folds)
        self.span = (self.folds - 1) * self.bit_period
        #: :func:`repro.dsp.kernels.preamble_fold` backend building the
        #: fold profile ("exact" = fixed-order direct adds, the
        #: bit-identity reference; "fast" = overlap-save FFT comb
        #: correlation, decode-equivalent).
        self.fold_mode = str(fold_mode)
        fill = decoder.rotation
        self._fill = 1.0 + 0.0j if fill is None else complex(fill)
        cdtype = np.dtype(dtype)
        rdtype = np.dtype(np.float32 if cdtype == np.complex64 else np.float64)
        self._u = _StreamBuffer(cdtype)
        #: One past the last stream position with a computed fold value.
        self.profile_end = 0
        self.mask_prefix = _PrefixSum(np.int32)
        self.count_prefix = _PrefixSum(np.int32)
        self.coherence_prefix = _PrefixSum(rdtype)
        self.concentration_prefix = _PrefixSum(cdtype)
        # -- windowed-statistic caches (batched scanner only) -----------
        # Every windowed gate statistic is a pure function of absolute
        # position — chunk alignment only chooses which slice to look
        # at.  Header rejects rewind the origin by one bit period and
        # rescan everything buffered ahead, re-deriving the same values
        # ~8x on capture-dense streams; computing them once per position
        # in extend_windowed() turns every rescan into zero-copy slicing.
        # The grouped kernel never calls extend_windowed(), so sessions
        # on the reference scanner pay nothing for these.
        self._capture_floor = (
            self.window - decoder.tau if capture_floor is None
            else int(capture_floor)
        )
        self._coherence_min = float(coherence_min)
        self._inv_fw = 1.0 / (self.folds * self.window)
        #: Scan-chunk stride in products; a chunk starting at ``q``
        #: evaluates the inclusive window-start range ``[q, q + stride]``.
        self._scan_stride = (
            8 * self.bit_period if scan_stride is None else int(scan_stride)
        )
        #: One past the last position with computed windowed statistics.
        self.win_end = 0
        self.count_win = _StreamBuffer(np.int32)
        self.cohcand_win = _StreamBuffer(rdtype)
        self.conc_win = _StreamBuffer(rdtype)
        #: Smallest working-dtype float whose float64 value clears the
        #: coherence floor: ``v >= _coh_pass`` in working precision is
        #: exactly ``float64(v) >= coherence_min``, the comparison the
        #: cascade's final verdict uses.  (For float32 the nearest cast
        #: of the threshold may round below the float64 floor; nudging
        #: one ulp up restores exact equivalence.)
        t = rdtype.type(self._coherence_min)
        if float(t) < self._coherence_min:
            t = np.nextafter(t, rdtype.type(np.inf))
        self._coh_pass = t
        #: Prefix counts of ``cohcand_win >= _coh_pass``.  A chunk
        #: starting at ``q`` passes the fused count+coherence gate iff
        #: some position in ``[q, q + stride]`` passes — a sliding *any*,
        #: answered by one prefix difference per chunk.
        self.cohpass_prefix = _PrefixSum(np.int32)
        #: Sorted absolute positions that could pass the concentration
        #: gate for *some* chunk alignment (see extend_windowed).
        self.hot = np.empty(0, dtype=np.int64)

    def extend(self, products):
        if products.size:
            self.mask_prefix.extend(products.imag >= 0.0)
            _unit_from_products(
                products, self._fill, out=self._u.alloc(products.size)
            )
        hi = self._u.end - self.span
        lo = self.profile_end
        if hi <= lo:
            return
        # Same fixed fold order as phasor_folded_profile in exact mode:
        # ((u0 + u1) + u2) + ... — elementwise, so each position's value
        # never depends on the surrounding slice.  The kernel always
        # returns a fresh array, so the unit reduction below may reuse
        # it in place.
        prof = preamble_fold(
            self._u.view(lo, hi + self.span),
            self.bit_period,
            self.folds,
            mode=self.fold_mode,
        )
        self.profile_end = hi
        # angle(prof) < 0 without computing angles: atan2 is negative
        # iff imag < 0, or exactly -pi for (-0.0 imag, negative real).
        neg = prof.imag < 0.0
        zero_imag = prof.imag == 0.0
        if zero_imag.any():
            neg |= np.signbit(prof.imag) & zero_imag & (prof.real < 0.0)
        self.count_prefix.extend(neg)
        mag = prof.real * prof.real
        mag += prof.imag * prof.imag
        np.sqrt(mag, out=mag)
        self.coherence_prefix.extend(mag)
        np.maximum(mag, mag.dtype.type(1e-12), out=mag)
        unit = prof  # reuse: the fold kernel always returns a fresh array
        unit.real /= mag
        unit.imag /= mag
        self.concentration_prefix.extend(unit)

    def extend_windowed(self):
        """Bring the windowed-statistic caches up to the profile end.

        For each newly covered position ``p`` (a window start), computes
        from the prefix streams — with exactly the expressions and
        rounding the scan cascade uses, so the cached floats are
        bit-identical to deriving them inside the scanner:

        * ``count_win[p]`` — votes in ``[p, p + window)`` (int, exact),
        * ``cohcand_win[p]`` — the windowed mean fold magnitude where
          the count clears the capture floor, ``-inf`` elsewhere (the
          fused count+coherence gate input),
        * ``conc_win[p]`` — the windowed concentration magnitude,
        * ``cohpass_prefix`` — prefix counts of positions whose
          candidate coherence clears the floor in float64 terms, so a
          chunk's fused count+coherence verdict (does *any* window
          start in ``[q, q + stride]`` pass?) is one prefix
          difference,
        * ``hot`` — sorted positions where ``conc_win >= 0.6`` *and*
          ``cohcand_win >= coherence_min``.  Any chunk whose best
          masked concentration could clear the absolute floor must
          contain one (the kept-mask threshold is ``>= coherence_min``
          and float casts are monotonic), so a chunk with no hot
          position in range is a concentration miss with no further
          arithmetic.
        """
        w = self.window
        lo = self.win_end
        base = self.count_prefix.base
        if lo < base:
            # The session trimmed past the cache's high-water mark while
            # a capture was decoding: positions below the trim floor can
            # never be scanned again, so rejoin the prefixes there.  The
            # windowed buffers were trimmed empty to exactly ``lo``.
            self.count_win.skip(base - lo)
            self.cohcand_win.skip(base - lo)
            self.conc_win.skip(base - lo)
            self.cohpass_prefix.skip_to(base)
            self.win_end = lo = base
        hi = self.profile_end - w + 1
        if hi <= lo:
            return
        # Computed straight into the cache buffers (no temp + copy);
        # every expression is the same single-rounding ufunc sequence
        # as the cascade's own derivation, so the floats are identical.
        n = hi - lo
        cn = self.count_prefix.view(lo, hi + w)
        counts = self.count_win.alloc(n)
        np.subtract(cn[w:], cn[:-w], out=counts)
        cm = self.coherence_prefix.view(lo, hi + w)
        cohcand = self.cohcand_win.alloc(n)
        np.subtract(cm[w:], cm[:-w], out=cohcand)
        cohcand *= self._inv_fw
        cohcand[counts < self._capture_floor] = -np.inf
        cu = self.concentration_prefix.view(lo, hi + w)
        du = cu[w:] - cu[:-w]
        mag = du.real * du.real
        mag += du.imag * du.imag
        np.sqrt(mag, out=mag)
        conc = self.conc_win.alloc(n)
        np.multiply(mag, 1.0 / w, out=conc)
        cpass = cohcand >= self._coh_pass
        self.cohpass_prefix.extend(cpass)
        if float(self._coh_pass) == self._coherence_min:
            # The nudged threshold landed exactly on the float64 floor,
            # so the pass mask doubles as the hot filter's coherence arm
            # (the weak-cast compare against ``coherence_min`` resolves
            # to the same working-precision threshold).
            coh_hot = cpass
        else:
            coh_hot = cohcand >= self._coherence_min
        hm = conc >= 0.6
        hm &= coh_hot
        hot = hm.nonzero()[0]
        if hot.size:
            hot += lo
            self.hot = np.concatenate([self.hot, hot])
        self.win_end = hi

    def trim(self, lo):
        self._u.trim(self.profile_end)
        self.mask_prefix.trim(lo)
        self.count_prefix.trim(lo)
        self.coherence_prefix.trim(lo)
        self.concentration_prefix.trim(lo)
        self.count_win.trim(lo)
        self.cohcand_win.trim(lo)
        self.conc_win.trim(lo)
        self.cohpass_prefix.trim(lo)
        if self.hot.size and self.hot[0] < lo:
            self.hot = self.hot[np.searchsorted(self.hot, lo):]


@dataclass(frozen=True)
class StreamFrame:
    """One frame decoded out of the stream.

    Indices are absolute product-stream coordinates of the session's
    channel (for demux sessions: the filtered sub-band stream, offset
    from the wideband stream by the channelizer's group delay).
    ``latency_products`` is how many products past the frame's last vote
    window the session had buffered when it emitted — the block-induced
    decode latency.
    """

    zigbee_channel: "int | None"
    preamble_index: int
    data_start: int
    end_index: int
    n_bits: int
    bits: tuple
    frame: "object | None"    # SymBeeFrame, or None if unparseable
    crc_ok: bool
    coherence: float
    #: Mean product magnitude (~signal power) over the frame span.  A
    #: frame leaked from a neighbouring sub-band (5 MHz is an exact
    #: multiple of ``fs / lag``, so neighbours alias onto the *same*
    #: product phase and only amplitude distinguishes them) shows up with
    #: the channelizer's stopband attenuation here; the engine's
    #: arbitration keeps the strongest copy.
    band_power: float
    latency_products: int

    def decode_fields(self):
        """Every field determined by stream *content* alone.

        ``latency_products`` is excluded: it measures how long after the
        frame's last vote window the emit happened, which legitimately
        depends on block size.  The invariance guarantee — and the tests
        asserting it — covers exactly this tuple.
        """
        return (
            self.zigbee_channel,
            self.preamble_index,
            self.data_start,
            self.end_index,
            self.n_bits,
            self.bits,
            self.frame,
            self.crc_ok,
            self.coherence,
            self.band_power,
        )


class StreamSession:
    """Stateful preamble/header/body decoder for one channel's stream.

    ``dtype`` is the working precision of the product buffer and every
    derived cache: ``complex128`` (default, required by exact-mode
    bit-exactness guarantees) or ``complex64`` (fast mode's float32
    working dtype — decode-equivalent, half the memory traffic).
    """

    def __init__(
        self,
        decoder,
        zigbee_channel=None,
        scan_stride_bits=8,
        capture_tau=None,
        folds=SYMBEE_PREAMBLE_BITS,
        coherence_slack=0.2,
        coherence_min=0.5,
        dtype=np.complex128,
        scan_kernel=DEFAULT_SCAN_KERNEL,
    ):
        self.decoder = decoder
        self.zigbee_channel = zigbee_channel
        self.capture_tau = capture_tau
        self.folds = int(folds)
        self.coherence_slack = float(coherence_slack)
        self.coherence_min = float(coherence_min)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise ValueError("dtype must be complex64 or complex128")
        if scan_stride_bits < 1:
            raise ValueError("scan_stride_bits must be >= 1")
        spec = validate_scan_kernel(scan_kernel)
        #: Scanner backend (see :mod:`repro.stream.scan`).
        self.scan_kernel = spec.name
        self._search_scan = (
            self._scan_batched if spec.batched else self._scan_grouped
        )
        #: Products the search origin advances per missed chunk.
        self.stride = int(scan_stride_bits) * decoder.bit_period
        #: Extra products a fold window reaches past its start.
        self.span = (self.folds - 1) * decoder.bit_period
        #: Full deterministic scan-chunk length.
        self.scan_len = self.stride + self.span + decoder.window
        self._buf = _StreamBuffer(self.dtype)
        tau = decoder.tau if capture_tau is None else int(capture_tau)
        self._derived = _DerivedStreams(
            decoder,
            self.folds,
            self.dtype,
            fold_mode=spec.fold_mode,
            capture_floor=decoder.window - tau,
            coherence_min=self.coherence_min,
            scan_stride=self.stride,
        )
        #: Memoized index arrays for the scan and bit decode — their
        #: shapes repeat every call, and arange dominates small calls.
        self._edges_cache = {}
        self._starts_cache = {}
        self._header_gather = None
        self._state = "search"
        self._origin = 0          # absolute origin of the next scan chunk
        self._n0 = 0              # absolute preamble index of current capture
        self._data_start = 0
        self._coherence = 0.0
        self._total_bits = 0
        self.frames_emitted = 0
        self.crc_failures = 0
        self.header_rejects = 0
        self.partial_at_eof = 0
        self.products_in = 0

    # -- public API ---------------------------------------------------------

    def push_products(self, products):
        """Consume one chunk of compensated products; return decoded frames."""
        products = np.asarray(products, dtype=self.dtype)
        self._buf.append(products)
        self._derived.extend(products)
        self.products_in += products.size
        return self._drain(final=False)

    def finish(self):
        """Flush at end-of-stream; return any frames decodable from the tail."""
        frames = self._drain(final=True)
        if self._state != "search":
            # A capture whose frame never fully arrived.
            self.partial_at_eof += 1
            _PARTIAL_EOF.inc()
            self._state = "search"
        self._origin = self._buf.end
        self._buf.trim(self._origin)
        self._derived.trim(self._origin)
        return frames

    @property
    def horizon(self):
        """Lower bound on any future frame's ``preamble_index``.

        While searching, no capture can land before the scan origin;
        while a capture is in flight, a header reject could restart the
        search at ``n0 + bit_period``, so ``n0`` bounds from below.  The
        engine's cross-session arbitration releases a frame only once
        every session's horizon has passed it.
        """
        return self._origin if self._state == "search" else self._n0

    def stats(self):
        return {
            "zigbee_channel": self.zigbee_channel,
            "products_in": self.products_in,
            "frames_emitted": self.frames_emitted,
            "crc_failures": self.crc_failures,
            "header_rejects": self.header_rejects,
            "partial_at_eof": self.partial_at_eof,
        }

    # -- state machine ------------------------------------------------------

    def _drain(self, final):
        emitted = []
        while self._advance(final, emitted):
            pass
        # In search the restart points at or after the origin; during
        # header/body a reject can resume at n0 + bit_period, so keep n0.
        keep = self._origin if self._state == "search" else self._n0
        self._buf.trim(keep)
        self._derived.trim(keep)
        return emitted

    def _advance(self, final, emitted):
        """One state transition; False when blocked on more input.

        Each transition runs under its own trace span (``scan`` /
        ``header`` / ``body``) so ``listen --profile`` attributes
        session time to the stage that spent it; the spans are gated on
        ``TRACER.enabled`` so the idle hot path never pays the
        context-manager protocol when nobody is tracing.
        """
        if self._state == "search":
            if not TRACER.enabled:
                return self._search(final)
            with TRACER.span("stream.session.scan"):
                return self._search(final)
        if self._state == "header":
            if not TRACER.enabled:
                return self._header(final)
            with TRACER.span("stream.session.header"):
                return self._header(final)
        if not TRACER.enabled:
            return self._body(final, emitted)
        with TRACER.span("stream.session.body"):
            return self._body(final, emitted)

    def _search(self, final):
        avail = self._buf.end - self._origin
        if avail >= self.scan_len:
            chunks = 1 + (avail - self.scan_len) // self.stride
            return self._search_scan(chunks)
        if final and avail >= self.span + self.decoder.window:
            # Last partial chunk: nothing after it will re-scan, so
            # accept a capture anywhere in it.  Rare (once per stream)
            # and shorter than a full chunk, so it goes through the
            # reference capture_preamble rather than the scanner; the
            # chunk content at end-of-stream is the same for any
            # blocking, so the outcome still is too.
            chunk = self._buf.view(self._origin, self._origin + avail)
            capture = capture_preamble(
                None,
                self.decoder,
                folds=self.folds,
                tau=self.capture_tau,
                coherence_slack=self.coherence_slack,
                coherence_min=self.coherence_min,
                unit_phasors=_unit_phasors(
                    self.decoder, np.asarray(chunk, dtype=np.complex128)
                ),
            )
            if capture is not None:
                self._n0 = self._origin + capture.index
                self._data_start = self._origin + capture.data_start
                self._coherence = capture.coherence
                self._state = "header"
                return True
            self._origin = self._buf.end
        return False

    def _scan_grouped(self, chunks):
        """Gate ``chunks`` consecutive buffered chunks from the caches.

        Chunk-by-chunk semantics identical to handing each chunk to
        :func:`capture_preamble` — the same cascade (count floor ->
        relative coherence -> concentration -> cluster-peak anchor ->
        accept only below ``stride``), the same outcome metrics — but
        every windowed statistic is a prefix difference from
        :class:`_DerivedStreams`: the count and coherence gates are
        evaluated for whole *groups* of chunks in a few dense vector
        passes, and the python loop below touches only the (rare)
        chunks whose best candidate coherence clears the absolute
        floor, running the concentration gate and cluster-anchor
        arithmetic on just their slice.  Chunk ``i``'s candidate window
        starts are ``[i * stride, i * stride + stride]`` inclusive: its
        fold profile has exactly ``stride + 1`` window positions, so
        the inclusive upper edge also reproduces the late hit that
        serial scanning finds and then rejects against the accept limit
        (chunk boundary positions are legitimately evaluated by both
        neighbouring chunks, exactly as serial scanning does).

        The dense passes run over at most ``_SCAN_GROUP_CHUNKS`` chunks
        at a time.  Grouping cannot change any outcome — every gate is
        a pure function of one chunk's slice and the chunk grid is
        anchored at the origin either way — but it bounds the dense
        work a call pays before an accept: header-reject cycles restart
        the search just one bit period ahead, and without the cap each
        restart would recompute dense statistics across everything
        buffered behind the reject.
        """
        s = self.stride
        w = self.decoder.window
        folds = self.folds
        tau = self.decoder.tau if self.capture_tau is None else int(self.capture_tau)
        floor = w - tau
        coh_min = self.coherence_min
        inv_fw = 1.0 / (folds * w)
        ninf = -np.inf
        derived = self._derived
        for g0 in range(0, chunks, _SCAN_GROUP_CHUNKS):
            gn = min(_SCAN_GROUP_CHUNKS, chunks - g0)
            o = self._origin
            n_starts = gn * s + 1
            cn = derived.count_prefix.view(o, o + n_starts + w)
            counts = cn[w:] - cn[:-w]

            # Per-chunk maxima via reduceat over the dense arrays:
            # segment i covers [i*s, (i+1)*s) (the last one runs to the
            # inclusive end of the array), and the shared right edge of
            # the interior chunks is patched in with one extra
            # elementwise maximum.
            edges = self._edges_cache.get(gn)
            if edges is None:
                edges = np.arange(0, gn * s, s)
                self._edges_cache[gn] = edges
            cand_max = np.maximum(np.maximum.reduceat(counts, edges), counts[s::s])
            has_cand = cand_max >= floor
            if not has_cand.any():
                _MISS_COUNT.inc(gn)
                self._origin = o + gn * s
                continue

            cm = derived.coherence_prefix.view(o, o + n_starts + w)
            coh = (cm[w:] - cm[:-w]) * inv_fw
            # Two collapses make the dense pass cheap.  First, the
            # relative threshold max(best - slack, coherence_min) is at
            # most best whenever best >= coherence_min, so a chunk
            # passes the coherence gate iff its best candidate clears
            # the absolute floor.  Second, masking to candidate
            # positions can only lower a chunk's best, so a chunk whose
            # best over *all* positions is below the floor misses
            # without ever building the candidate mask — the mask, the
            # masked best, and the whole concentration stage are built
            # per chunk below, only for the (rare) chunks that survive
            # this pre-gate.
            best_any = np.maximum(np.maximum.reduceat(coh, edges), coh[s::s])
            passing = (has_cand & (best_any >= coh_min)).nonzero()[0]

            def count_misses(upto):
                """Miss metrics for non-passing chunks below ``upto``.

                Passing chunks record their own outcome in the loop; a
                chunk past an accepted one records nothing (it is
                rescanned after the frame, exactly as serial scanning
                would).
                """
                n_count = int(upto - np.count_nonzero(has_cand[:upto]))
                n_coh = int(upto - passing.searchsorted(upto)) - n_count
                if n_count:
                    _MISS_COUNT.inc(n_count)
                if n_coh:
                    _MISS_COHERENCE.inc(n_coh)

            cu = None
            accepted = False
            for i in passing:
                i = int(i)
                lo = i * s
                sl = slice(lo, lo + s + 1)
                coh_c = np.where(counts[sl] >= floor, coh[sl], ninf)
                best = float(coh_c.max())
                if best < coh_min:
                    _MISS_COHERENCE.inc()
                    continue
                kept = coh_c >= max(best - self.coherence_slack, coh_min)
                if cu is None:
                    cu = derived.concentration_prefix.view(
                        o, o + n_starts + w
                    )
                du = cu[w + lo : w + lo + s + 1] - cu[lo : lo + s + 1]
                conc = np.sqrt(du.real * du.real + du.imag * du.imag) * (1.0 / w)
                conc_c = np.where(kept, conc, ninf)
                best_conc = float(conc_c.max())
                if best_conc < 0.6:
                    _MISS_CONCENTRATION.inc()
                    continue
                surv = conc_c >= max(best_conc - self.coherence_slack, 0.6)
                cand = surv.nonzero()[0]
                # Anchor inside the first qualifying cluster at its
                # count peak: the leading window qualifies while still
                # sliding onto the plateau, the peak marks the plateau
                # proper.
                first = int(cand[0])
                breaks = (cand[1:] - cand[:-1] > 1).nonzero()[0]
                cluster_end = int(cand[breaks[0]]) if breaks.size else int(cand[-1])
                n0 = first + int(np.argmax(counts[lo + first : lo + cluster_end + 1]))
                coherence = float(coh[lo + n0]) if surv[n0] else 1.0
                _HIT.inc()
                _COHERENCE.observe(coherence)
                if n0 >= s:
                    # Late hit: the next chunk re-finds it below its own
                    # accept limit, exactly as serial scanning would.
                    continue
                count_misses(i)
                self._origin = o + lo
                self._n0 = self._origin + n0
                self._data_start = self._n0 + folds * self.decoder.bit_period
                self._coherence = coherence
                self._state = "header"
                accepted = True
                break
            if accepted:
                return True
            count_misses(gn)
            self._origin = o + gn * s
        return True

    def _scan_batched(self, chunks):
        """Batched scan: the masked cascade over whole chunk batches.

        Decision- and metric-identical to :meth:`_scan_grouped` — both
        kernels compare exactly the same cache floats and every gate is
        a pure function of one chunk's slice — but the per-chunk work
        collapses to almost nothing:

        * **windowed statistics are cached, not derived**: every gate
          input (windowed vote count, candidate-masked coherence,
          concentration magnitude) is a pure function of absolute
          stream position, maintained once per position by
          :meth:`_DerivedStreams.extend_windowed`.  Header-reject
          rescans — which re-cover everything buffered ahead of the
          reject, the dominant scan cost on capture-dense streams —
          become zero-copy slices of those caches.
        * **count + coherence fused**: a chunk clears the fused gate
          iff *some* window start in its inclusive range has a
          candidate coherence over the floor — a sliding *any*,
          answered for the whole batch by one strided difference of
          the cached pass-count prefix (``cohpass_prefix``).  The
          threshold is pre-adjusted so the working-precision compare
          equals the float64 verdict the grouped kernel reaches per
          chunk with its pre-gate plus an in-loop ``np.where``/``max``
          pair (same coherence-miss totals, split between its two
          stages).
        * **concentration via the hot index**: the cache keeps the
          sorted positions that could pass the concentration floor
          under any chunk-relative mask, so one ``searchsorted`` per
          batch finds the chunks worth an exact look; the rest are
          concentration misses with no arithmetic at all.  Only those
          (rare) chunks run the grouped kernel's own scalar cascade.

        Batch sizing follows ``_SCAN_BATCH_MIN/GROWTH/MAX``: small
        first pass, so header-reject rescans stay as cheap as the
        grouped kernel's 8-chunk cap, then growing passes while
        draining deep buffers — sizing cannot change an outcome, it
        only widens the dispatch.
        """
        s = self.stride
        w = self.decoder.window
        folds = self.folds
        tau = self.decoder.tau if self.capture_tau is None else int(self.capture_tau)
        floor = w - tau
        coh_min = self.coherence_min
        slack = self.coherence_slack
        ninf = -np.inf
        derived = self._derived
        derived.extend_windowed()
        hot = derived.hot
        # Fast path: after a header-reject rewind the accepted chunk is
        # usually the very first one — gate it with two scalar prefix
        # reads and, when it might hit, run its cascade on stride-sized
        # views, skipping the batched dispatch entirely.  Commits only
        # on an accept (whose only metric effects are the hit counters
        # recorded here); every other outcome falls through with no
        # side effects and the dense pass below re-derives it from the
        # same cache floats.
        #
        # When nobody is watching the metrics the accept also gates the
        # header word right here (the same gather :meth:`_header` runs)
        # — a reject then rewinds the origin one bit period and loops
        # without bouncing through the ``_advance``/``_search`` state
        # machinery, whose per-transition dispatch dominates the cost
        # of capture-dense reject chains.  State transitions, session
        # counters, and every decision are identical to taking the
        # machinery path; it is purely fewer python frames per reject.
        bp = self.decoder.bit_period
        registry_off = not REGISTRY.enabled
        # Raw cache arrays hoisted out of the reject loop: nothing
        # extends or trims the derived buffers while a scan runs, so
        # (data, physical offset) pairs stay valid across iterations
        # and replace a bounds-checked .view() call per access.
        cb = derived.cohpass_prefix._buf
        cpd, cpo = cb._data, cb._start - cb.base
        chb = derived.cohcand_win
        chd, cho = chb._data, chb._start - chb.base
        cnb = derived.conc_win
        cnd, cno = cnb._data, cnb._start - cnb.base
        ctb = derived.count_win
        ctd, cto = ctb._data, ctb._start - ctb.base
        mpb = derived.mask_prefix._buf
        mpd, mpo = mpb._data, mpb._start - mpb.base
        hdr_span = (_HEADER_BITS - 1) * bp + self.decoder.window
        buf_end = self._buf.end
        scan_len = self.scan_len
        cached = self._header_gather
        if cached is None:
            starts = bp * np.arange(_HEADER_BITS, dtype=np.int64)
            idx = np.concatenate((starts, starts + self.decoder.window))
            weights = 1 << np.arange(
                _HEADER_BITS - 1, -1, -1, dtype=np.int64
            )
            cached = self._header_gather = (idx, weights)
        hdr_idx, hdr_weights = cached
        tau_sync = self.decoder.tau_sync
        while chunks:
            o = self._origin
            if cpd[cpo + o + s + 1] <= cpd[cpo + o]:
                break
            h0 = hot.searchsorted(o)
            if h0 >= hot.size or hot[h0] > o + s:
                break
            a = cho + o
            coh_c = chd[a : a + s + 1]
            kept = coh_c >= max(float(coh_c.max()) - slack, coh_min)
            a = cno + o
            conc_c = np.where(kept, cnd[a : a + s + 1], ninf)
            best_conc = float(conc_c.max())
            if best_conc < 0.6:
                break
            surv = conc_c >= max(best_conc - slack, 0.6)
            cand_pos = surv.nonzero()[0]
            first = int(cand_pos[0])
            breaks = (cand_pos[1:] - cand_pos[:-1] > 1).nonzero()[0]
            cluster_end = (
                int(cand_pos[breaks[0]])
                if breaks.size
                else int(cand_pos[-1])
            )
            a = cto + o + first
            n0 = first + int(
                np.argmax(ctd[a : a + cluster_end - first + 1])
            )
            if n0 >= s:
                break
            coherence = float(coh_c[n0]) if surv[n0] else 1.0
            self._n0 = o + n0
            self._data_start = self._n0 + folds * bp
            self._coherence = coherence
            if registry_off:
                end = self._data_start + hdr_span
                if buf_end >= end:
                    # The exact word gate _header runs, inlined: on a
                    # reject, rewind and keep scanning chunk 0 in-loop.
                    a = mpo + self._data_start
                    edges = mpd[a : a + hdr_span + 1][hdr_idx]
                    votes = edges[_HEADER_BITS:] - edges[:_HEADER_BITS]
                    word = int((votes >= tau_sync) @ hdr_weights)
                    version = (word >> (_HEADER_BITS - 4)) & 0xF
                    frame_type = (word >> (_HEADER_BITS - 8)) & 0xF
                    length = (word >> (_HEADER_BITS - 16)) & 0xFF
                    if (
                        version != VERSION
                        or frame_type > MAX_KNOWN_FRAME_TYPE
                        or (
                            FRAME_TYPE_ACK
                            < frame_type
                            < FRAME_TYPE_TRANSPORT_BASE
                        )
                        or length > MAX_DATA_BITS
                    ):
                        self.header_rejects += 1
                        self._origin = self._n0 + bp
                        avail = buf_end - self._origin
                        if avail < scan_len:
                            # Blocked (or the end-of-stream partial):
                            # hand back to _search, which knows what to
                            # do with the remainder.
                            return True
                        chunks = 1 + (avail - scan_len) // self.stride
                        continue
                    self._total_bits = frame_overhead_bits() + length
                    self._state = "body"
                    return True
            else:
                _HIT.inc()
                _COHERENCE.observe(coherence)
            self._state = "header"
            return True
        done = 0
        batch = _SCAN_BATCH_MIN
        while done < chunks:
            gn = min(batch, chunks - done)
            batch = min(batch * _SCAN_BATCH_GROWTH, _SCAN_BATCH_MAX)
            o = self._origin
            n_starts = gn * s + 1
            # Fused count + coherence gate: chunk ``i`` passes iff any
            # position in ``[i*s, i*s + s]`` clears the coherence floor
            # — one strided difference of the cached pass-count prefix.
            cp = derived.cohpass_prefix.view(o, o + n_starts + 1)
            passing = (cp[s + 1 :: s][:gn] > cp[: gn * s : s]).nonzero()[0]

            counts = None
            has_cand = None

            def miss_below(upto):
                """Count/coherence miss metrics for chunks below ``upto``.

                ``passing`` already excludes chunks whose best candidate
                coherence misses the floor, so the coherence-miss count
                covers both grouped-kernel cases (pre-gate miss and
                in-loop masked miss) in one subtraction — same totals.
                """
                nonlocal counts, has_cand
                if registry_off or upto <= 0:
                    # Pure metric accounting — skip the arithmetic when
                    # nobody can observe it.
                    return
                n_pass = int(passing.searchsorted(upto))
                if n_pass == upto:
                    return
                if has_cand is None:
                    if counts is None:
                        counts = derived.count_win.view(o, o + n_starts)
                    edges = self._edges_cache.get(gn)
                    if edges is None:
                        edges = np.arange(0, gn * s, s)
                        self._edges_cache[gn] = edges
                    has_cand = np.maximum(
                        np.maximum.reduceat(counts, edges), counts[s::s]
                    ) >= floor
                n_count = int(upto - np.count_nonzero(has_cand[:upto]))
                n_coh = upto - n_pass - n_count
                if n_count:
                    _MISS_COUNT.inc(n_count)
                if n_coh:
                    _MISS_COHERENCE.inc(n_coh)

            accepted = False
            r_stop = passing.size
            maybe = _EMPTY_ROWS
            if passing.size:
                # Concentration stage only where it can matter: the hot
                # index pins down every position that could clear the
                # absolute concentration floor under *any* chunk-relative
                # kept mask, so a passing chunk with no hot position in
                # its inclusive range [i*s, i*s + s] is a concentration
                # miss with no further work.  The scalar cascade below —
                # the grouped kernel's own in-loop arithmetic, byte for
                # byte — runs only for the (rare) chunks that might hit.
                h0, h1 = hot.searchsorted((o, o + n_starts))
                if h1 > h0:
                    hot_rel = hot[h0:h1] - o
                    plo = passing * s
                    li = hot_rel.searchsorted(plo)
                    ri = hot_rel.searchsorted(plo + s, side="right")
                    maybe = (ri > li).nonzero()[0]
            if maybe.size:
                conc = derived.conc_win.view(o, o + n_starts)
                coh_cand = derived.cohcand_win.view(o, o + n_starts)
                if counts is None:
                    counts = derived.count_win.view(o, o + n_starts)
                for r in maybe:
                    r = int(r)
                    i = int(passing[r])
                    lo = i * s
                    sl = slice(lo, lo + s + 1)
                    coh_c = coh_cand[sl]
                    # Grouped's exact in-loop arithmetic, bit for bit:
                    # the chunk best as a float64 max over the masked
                    # slice, and a relative threshold that weak-casts
                    # to the cache dtype in the comparison.
                    kept = coh_c >= max(float(coh_c.max()) - slack, coh_min)
                    conc_c = np.where(kept, conc[sl], ninf)
                    best_conc = float(conc_c.max())
                    if best_conc < 0.6:
                        _MISS_CONCENTRATION.inc()
                        continue
                    surv = conc_c >= max(best_conc - slack, 0.6)
                    cand_pos = surv.nonzero()[0]
                    # Anchor inside the first qualifying cluster at its
                    # count peak, exactly as the grouped kernel does.
                    first = int(cand_pos[0])
                    breaks = (cand_pos[1:] - cand_pos[:-1] > 1).nonzero()[0]
                    cluster_end = (
                        int(cand_pos[breaks[0]])
                        if breaks.size
                        else int(cand_pos[-1])
                    )
                    n0 = first + int(
                        np.argmax(counts[lo + first : lo + cluster_end + 1])
                    )
                    coherence = float(coh_cand[lo + n0]) if surv[n0] else 1.0
                    _HIT.inc()
                    _COHERENCE.observe(coherence)
                    if n0 >= s:
                        # Late hit: re-found by the next chunk below its
                        # own accept limit, as serial scanning would.
                        continue
                    miss_below(i)
                    self._origin = o + lo
                    self._n0 = self._origin + n0
                    self._data_start = self._n0 + folds * self.decoder.bit_period
                    self._coherence = coherence
                    self._state = "header"
                    accepted = True
                    r_stop = r
                    break
            # Passing chunks below the stop point that were not worth an
            # exact look all miss the concentration gate; evaluated ones
            # recorded their own outcome above.  Same totals as grouped's
            # per-chunk increments, no metrics past an accepted chunk.
            if not registry_off:
                n_conc = int(r_stop - maybe.searchsorted(r_stop))
                if n_conc:
                    _MISS_CONCENTRATION.inc(n_conc)
            if accepted:
                return True
            miss_below(gn)
            self._origin = o + gn * s
            done += gn
        return True

    def _header(self, final):
        end = self._bits_end(_HEADER_BITS)
        if self._buf.end < end:
            return False
        if not REGISTRY.enabled:
            # Hot path (header rejects dominate capture-dense scanning):
            # decode all 24 header bits as one machine word — a single
            # fancy gather of the vote prefix at the 48 window edges,
            # thresholded and dotted with bit weights.  Same integer
            # vote counts as :meth:`_decode_bits`, so the same bits.
            cached = self._header_gather
            if cached is None:
                bp = self.decoder.bit_period
                starts = bp * np.arange(_HEADER_BITS, dtype=np.int64)
                idx = np.concatenate((starts, starts + self.decoder.window))
                weights = 1 << np.arange(
                    _HEADER_BITS - 1, -1, -1, dtype=np.int64
                )
                cached = self._header_gather = (idx, weights)
            idx, weights = cached
            prefix = self._derived.mask_prefix.view(
                self._data_start, end + 1
            )
            edges = prefix[idx]
            votes = edges[_HEADER_BITS:] - edges[:_HEADER_BITS]
            word = int((votes >= self.decoder.tau_sync) @ weights)
            version = (word >> (_HEADER_BITS - 4)) & 0xF
            frame_type = (word >> (_HEADER_BITS - 8)) & 0xF
            length = (word >> (_HEADER_BITS - 16)) & 0xFF
        else:
            bits = self._decode_bits(self._data_start, _HEADER_BITS)
            if len(bits) < _HEADER_BITS:
                return False if not final else self._reject_header()
            version = self._bits_to_int(bits[0:4])
            frame_type = self._bits_to_int(bits[4:8])
            length = self._bits_to_int(bits[8:16])
        if (
            version != VERSION
            or frame_type > MAX_KNOWN_FRAME_TYPE
            or (FRAME_TYPE_ACK < frame_type < FRAME_TYPE_TRANSPORT_BASE)
            or length > MAX_DATA_BITS
        ):
            return self._reject_header()
        self._total_bits = frame_overhead_bits() + length
        self._state = "body"
        return True

    def _body(self, final, emitted):
        end = self._bits_end(self._total_bits)
        if self._buf.end < end:
            return False
        bits = self._decode_bits(self._data_start, self._total_bits)
        frame = parse_frame_bits(bits)
        crc_ok = bool(frame is not None and frame.crc_ok)
        self.frames_emitted += 1
        _FRAMES.inc()
        if not crc_ok:
            self.crc_failures += 1
            _CRC_FAILED.inc()
        latency = self._buf.end - end
        _LATENCY.observe(latency)
        span = self._buf.view(self._n0, end)
        # Magnitude via single-rounding real ops (not np.abs's hypot
        # kernel) so the value cannot drift with buffer alignment —
        # the engine's leak arbitration compares it across sessions.
        mag = span.real * span.real
        mag += span.imag * span.imag
        np.sqrt(mag, out=mag)
        band_power = float(np.mean(mag))
        emitted.append(
            StreamFrame(
                zigbee_channel=self.zigbee_channel,
                preamble_index=self._n0,
                data_start=self._data_start,
                end_index=end,
                n_bits=self._total_bits,
                bits=bits,
                frame=frame,
                crc_ok=crc_ok,
                coherence=self._coherence,
                band_power=band_power,
                latency_products=latency,
            )
        )
        self._state = "search"
        if crc_ok:
            self._origin = (
                self._data_start + self._total_bits * self.decoder.bit_period
            )
        else:
            # A failed CRC means the capture was bogus (a neighbour's
            # leaked preamble, a collision) — resume one bit past it
            # instead of skipping the whole claimed span, so a real
            # frame shadowed inside that span is still found.
            self._origin = self._n0 + self.decoder.bit_period
        return True

    # -- helpers ------------------------------------------------------------

    def _bits_end(self, n_bits):
        """Absolute index one past the last vote window of ``n_bits``."""
        return (
            self._data_start
            + (n_bits - 1) * self.decoder.bit_period
            + self.decoder.window
        )

    def _decode_bits(self, start, n_bits):
        end = self._bits_end(n_bits)
        if REGISTRY.enabled:
            # The reference decode also feeds the vote-margin and
            # phase-run-length diagnostics; keep them exact when anyone
            # is looking.  The bits are identical either way — both
            # paths threshold the same integer window counts.
            segment = self._buf.view(start, end)
            result = self.decoder.decode_synchronized_mask(
                segment.imag >= 0.0, 0, n_bits
            )
            return result.bits
        w = self.decoder.window
        prefix = self._derived.mask_prefix.view(start, end + 1)
        cached = self._starts_cache.get(n_bits)
        if cached is None:
            starts = self.decoder.bit_period * np.arange(n_bits, dtype=np.int64)
            cached = (starts, starts + w)
            self._starts_cache[n_bits] = cached
        starts, ends = cached
        votes = prefix[ends] - prefix[starts]
        bits = votes >= self.decoder.tau_sync
        return tuple(bits.astype(np.uint8).tolist())

    def _reject_header(self):
        self.header_rejects += 1
        _HEADER_REJECTS.inc()
        self._state = "search"
        self._origin = self._n0 + self.decoder.bit_period
        return True

    @staticmethod
    def _bits_to_int(bits):
        value = 0
        for bit in bits:
            value = (value << 1) | int(bit)
        return value
