"""Per-channel streaming decode session (preamble -> header -> body).

A :class:`StreamSession` consumes the CFO-compensated phasor-product
stream of one ZigBee channel in arbitrary-size pieces and emits complete
SymBee frames.  Every decision is a function of the *absolute* product
stream only, never of where pushes were cut, which is what makes
streaming decode bit-identical to a single whole-capture call:

* **Search** runs over deterministic scan chunks.  The session waits
  until the chunk ``[o, o + stride + span + window)`` is fully buffered
  (``o`` the scan origin, ``stride = scan_stride_bits * bit_period``,
  ``span = (folds - 1) * bit_period``), applies the
  :func:`repro.core.preamble.capture_preamble` gate cascade to it, and
  accepts a capture only in the first ``stride`` products — later hits
  are re-found by the next chunk, whose origin is ``o + stride``
  regardless of blocking.  (The capture gates are slice-relative, so
  scanning *fixed* chunks is what keeps them deterministic.)
* **Header** decodes the 24 header bits as soon as their last vote
  window is buffered, validates version / type / length, and on a bogus
  header resumes searching at ``n0 + bit_period`` (one bit past the
  false preamble).
* **Body** waits for the full frame (header + data + CRC vote windows),
  majority-votes every bit in one pass, parses, emits, and resumes
  searching right after the frame.

``finish()`` flushes at end-of-stream: the final partial chunk is
scanned once (accepting any position — no later chunk will see it), and
a capture whose frame ran off the stream is counted as partial.

**The incremental scanner (PR 5).**  Scanning chunk-by-chunk through
:func:`capture_preamble` re-derives unit phasors, fold profiles and
window counts for every chunk — and a header reject rewinds the origin
by one bit, so signal-dense streams re-derive the same region dozens of
times.  The session instead maintains :class:`_DerivedStreams`: rolling,
absolute-indexed caches of every quantity the gate cascade needs, each
computed once per product.  The cache arithmetic is deliberately
blocking-invariant — elementwise single-rounding ops, fixed-order fold
sums, and prefix sums whose accumulation order is the stream order
itself (``np.cumsum`` is a strict left fold, so continuing it from a
running total is bit-identical to one whole-stream pass) — so cache
slices taken at any moment contain the same floats for any push sizes.
:meth:`StreamSession._search_scan` then evaluates the whole cascade for
every buffered chunk in a handful of vectorized passes (count floor,
relative coherence, concentration, cluster-peak anchor — the same
decisions in the same order as ``capture_preamble``, including its
outcome metrics), touching each product a constant number of times no
matter how often header rejects rewind across it.  The windowed
coherence/concentration sums come from prefix differences rather than
per-chunk summation, so their last ~1e-11 (float64) differs from
``capture_preamble``'s; the gates have 0.2 of slack and the values are
used consistently, so decisions are deterministic and block-size
invariant either way.

**Working dtype.**  ``dtype=numpy.complex64`` (the fast kernel mode's
optional float32 working precision) halves the memory traffic of every
cache.  The float gate caches then carry ~1e-3 of prefix-cancellation
error after a million products instead of ~1e-11 — still far inside the
0.2 gate slack, but growing linearly with session length, so very long
unbroken float32 sessions (beyond ~10^8 products) should be avoided;
``exact`` sessions must use complex128, which is good past 10^15.  The
integer caches (vote counts, fold-negativity counts) are exact at any
precision; they are kept in int32, which bounds a single session at
2^31 products (~9 days of one decimated sub-band) — beyond any test or
bench horizon, and a deliberate trade for halved prefix traffic.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_PREAMBLE_BITS
from repro.core.frame import (
    FRAME_TYPE_ACK,
    FRAME_TYPE_TRANSPORT_BASE,
    MAX_DATA_BITS,
    MAX_KNOWN_FRAME_TYPE,
    VERSION,
    frame_overhead_bits,
    parse_frame_bits,
)
from repro.core.preamble import (
    _COHERENCE,
    _HIT,
    _MISS_COHERENCE,
    _MISS_CONCENTRATION,
    _MISS_COUNT,
    capture_preamble,
)
from repro.obs.metrics import REGISTRY

_HEADER_BITS = 24

#: Chunks evaluated per dense scan pass.  Enough to amortize the vector
#: dispatches while scanning noise, small enough that a capture or a
#: header-reject cycle near the origin never pays for dense statistics
#: across everything buffered behind it.
_SCAN_GROUP_CHUNKS = 8


def _unit_from_products(chunk, fill):
    """Deterministic unit phasors (zero products take ``fill``).

    Magnitude as ``sqrt(re*re + im*im)`` and one real divide per plane —
    every element is the same sequence of single-rounding real ufunc
    ops, so the result is bit-identical no matter how the stream was
    blocked or how the buffer happens to be aligned.  numpy's
    reciprocal-then-complex-multiply path in the core decoder is faster
    but rounds differently depending on SIMD lane, which would leak
    block-size dependence into the capture coherence.  Works in the
    chunk's own precision (complex64 in fast float32 sessions).
    """
    mag = np.sqrt(chunk.real * chunk.real + chunk.imag * chunk.imag)
    zero = mag == 0.0
    has_zero = bool(zero.any())
    if has_zero:
        mag[zero] = 1.0
    unit = np.empty(chunk.size, dtype=chunk.dtype)
    unit.real = chunk.real / mag
    unit.imag = chunk.imag / mag
    if has_zero:
        unit[zero] = fill
    return unit


def _unit_phasors(decoder, chunk):
    """:func:`_unit_from_products` with the decoder's zero-product fill.

    Same semantics as :meth:`repro.core.decoder.SymBeeDecoder.unit_phasors`
    (zero-amplitude products take the post-compensation zero-phase
    phasor), used for the end-of-stream partial chunk that still goes
    through :func:`repro.core.preamble.capture_preamble` directly.
    """
    fill = decoder.rotation
    return _unit_from_products(chunk, 1.0 + 0.0j if fill is None else fill)


_FRAMES = REGISTRY.counter("stream.session.frames")
_CRC_FAILED = REGISTRY.counter("stream.session.crc_failed")
_HEADER_REJECTS = REGISTRY.counter("stream.session.header_rejects")
_PARTIAL_EOF = REGISTRY.counter("stream.session.partial_at_eof")
#: Products buffered past a frame's last vote window when it was emitted
#: — the decode latency floor in samples (one bit period = 640).
_LATENCY = REGISTRY.histogram(
    "stream.session.frame_latency",
    edges=(640, 2560, 5120, 10240, 20480, 40960, 81920, 163840),
)


class _StreamBuffer:
    """Growable product buffer addressed by absolute stream index."""

    def __init__(self, dtype=np.complex128):
        self._data = np.empty(8192, dtype=dtype)
        self._start = 0   # physical index of absolute index ``base``
        self._len = 0
        self.base = 0     # absolute stream index of the oldest kept product

    @property
    def end(self):
        """One past the newest buffered absolute index."""
        return self.base + self._len

    def alloc(self, n):
        """Append ``n`` uninitialised entries, return the view to fill.

        Lets producers compute straight into the buffer (cumsums, fold
        sums) instead of building a temporary and copying it in.
        """
        if self._start + self._len + n > self._data.size:
            if self._start:
                # Compact trimmed space before growing.
                self._data[: self._len] = self._data[
                    self._start : self._start + self._len
                ]
                self._start = 0
            if self._len + n > self._data.size:
                cap = self._data.size
                while cap < self._len + n:
                    cap *= 2
                grown = np.empty(cap, dtype=self._data.dtype)
                grown[: self._len] = self._data[: self._len]
                self._data = grown
        lo = self._start + self._len
        self._len += n
        return self._data[lo : lo + n]

    def append(self, arr):
        if arr.size:
            self.alloc(arr.size)[:] = arr

    def trim(self, lo):
        """Forget everything below absolute index ``lo`` (O(1))."""
        drop = min(max(lo - self.base, 0), self._len)
        self._start += drop
        self.base += drop
        self._len -= drop

    def view(self, lo, hi):
        """Zero-copy view of absolute range ``[lo, hi)`` (must be buffered)."""
        if lo < self.base or hi > self.end:
            raise IndexError(
                f"range [{lo}, {hi}) outside buffered [{self.base}, {self.end})"
            )
        a = self._start + (lo - self.base)
        return self._data[a : a + (hi - lo)]


class _PrefixSum:
    """Rolling prefix sums: entry ``i`` is the sum over stream ``[0, i)``.

    Extending continues numpy's sequential accumulation from the stored
    running total, which is bit-identical to a single whole-stream
    cumsum for any chunking — float dtypes included, since ``np.cumsum``
    is a strict left fold and seeding the chunk's first element with the
    saved total literally resumes that fold in place.
    Windowed sums anywhere in the stream are then two gathers and a
    subtract, and — because every entry is a function of absolute
    position only — they are the same values no matter how the stream
    was pushed.  The price for floats is the usual large-prefix
    cancellation: a window sum loses about as many digits as the prefix
    has grown — see the module docstring for the per-dtype horizon.
    """

    def __init__(self, dtype):
        dtype = np.dtype(dtype)
        self._buf = _StreamBuffer(dtype)
        self._buf.append(np.zeros(1, dtype=dtype))
        # Running total kept outside the buffer: trimming may drop every
        # entry (the stream can be forgotten past the newest prefix),
        # and the continuation seed must survive that.
        self._total = dtype.type(0)

    @property
    def end(self):
        return self._buf.end

    def extend(self, values):
        n = values.size
        if n == 0:
            return
        tail = self._buf.alloc(n)
        tail[:] = values
        # Seeding the first element makes the in-place cumsum the strict
        # left fold ((total + v0) + v1) + ... — for floats, bit-identical
        # to cumsumming the whole stream in one call (see the module
        # docstring); for integers, exact regardless.
        tail[0] += self._total
        np.cumsum(tail, out=tail)
        self._total = tail[-1]

    def view(self, lo, hi):
        return self._buf.view(lo, hi)

    def trim(self, lo):
        self._buf.trim(lo)


class _DerivedStreams:
    """Rolling absolute-indexed derived streams behind the scanner.

    Everything the capture gate cascade and the synchronized decode
    consume, computed once per product as the stream arrives:

    * ``mask_prefix`` — prefix counts of ``product.imag >= 0`` (integer,
      exact): any bit's vote count is one prefix difference.
    * unit phasors (kept only far enough back to extend the profile).
    * the circular fold profile (fixed-order sum of ``folds`` shifted
      unit-phasor streams), immediately reduced to:

      - ``count_prefix`` — prefix counts of negative fold angles
        (the same signed-zero-aware negativity test
        ``capture_preamble`` uses; integer, exact),
      - ``coherence_prefix`` — prefix sums of the fold magnitude,
      - ``concentration_prefix`` — prefix sums of the per-position
        *unit* fold phasor (complex),

      after which the profile values themselves are dropped.

    All of it is blocking-invariant by construction (see the module
    docstring), so :meth:`StreamSession._search_scan` can gate any chunk
    from slices without re-deriving anything.  Float caches follow the
    session's working dtype (float32 halves their traffic, at the
    precision noted in the module docstring).

    Fast-mode sessions use the same dense caches as exact ones: the
    fast kernels' defer/flush contract (see
    :func:`repro.dsp.kernels.polyphase_decimate_fast`) makes their
    products blocking-invariant, so the prefix arithmetic here carries
    the invariance through unchanged.  A lazily-extended variant that
    derived the float gates only over scanned regions was measured
    slower at every signal density — the count gate fires for nearly
    every noise chunk, so coherence ends up densely covered anyway and
    the on-demand dispatch overhead is pure loss.
    """

    def __init__(self, decoder, folds, dtype=np.complex128):
        self.bit_period = decoder.bit_period
        self.window = decoder.window
        self.folds = int(folds)
        self.span = (self.folds - 1) * self.bit_period
        fill = decoder.rotation
        self._fill = 1.0 + 0.0j if fill is None else complex(fill)
        cdtype = np.dtype(dtype)
        rdtype = np.dtype(np.float32 if cdtype == np.complex64 else np.float64)
        self._u = _StreamBuffer(cdtype)
        #: One past the last stream position with a computed fold value.
        self.profile_end = 0
        self.mask_prefix = _PrefixSum(np.int32)
        self.count_prefix = _PrefixSum(np.int32)
        self.coherence_prefix = _PrefixSum(rdtype)
        self.concentration_prefix = _PrefixSum(cdtype)

    def extend(self, products):
        if products.size:
            self.mask_prefix.extend(products.imag >= 0.0)
            self._u.append(_unit_from_products(products, self._fill))
        hi = self._u.end - self.span
        lo = self.profile_end
        if hi <= lo:
            return
        bp = self.bit_period
        if self.folds == 1:
            prof = self._u.view(lo, hi)
        else:
            # Same fixed fold order as phasor_folded_profile:
            # ((u0 + u1) + u2) + ... — elementwise, so each position's
            # value never depends on the surrounding slice.
            prof = self._u.view(lo, hi) + self._u.view(lo + bp, hi + bp)
            for k in range(2, self.folds):
                prof += self._u.view(lo + k * bp, hi + k * bp)
        self.profile_end = hi
        # angle(prof) < 0 without computing angles: atan2 is negative
        # iff imag < 0, or exactly -pi for (-0.0 imag, negative real).
        neg = prof.imag < 0.0
        zero_imag = prof.imag == 0.0
        if zero_imag.any():
            neg |= np.signbit(prof.imag) & zero_imag & (prof.real < 0.0)
        self.count_prefix.extend(neg)
        mag = np.sqrt(prof.real * prof.real + prof.imag * prof.imag)
        self.coherence_prefix.extend(mag)
        np.maximum(mag, mag.dtype.type(1e-12), out=mag)
        unit = prof  # reuse: prof is ours (fresh array when folds > 1)
        if self.folds == 1:
            unit = prof.copy()
        unit.real /= mag
        unit.imag /= mag
        self.concentration_prefix.extend(unit)

    def trim(self, lo):
        self._u.trim(self.profile_end)
        self.mask_prefix.trim(lo)
        self.count_prefix.trim(lo)
        self.coherence_prefix.trim(lo)
        self.concentration_prefix.trim(lo)


@dataclass(frozen=True)
class StreamFrame:
    """One frame decoded out of the stream.

    Indices are absolute product-stream coordinates of the session's
    channel (for demux sessions: the filtered sub-band stream, offset
    from the wideband stream by the channelizer's group delay).
    ``latency_products`` is how many products past the frame's last vote
    window the session had buffered when it emitted — the block-induced
    decode latency.
    """

    zigbee_channel: "int | None"
    preamble_index: int
    data_start: int
    end_index: int
    n_bits: int
    bits: tuple
    frame: "object | None"    # SymBeeFrame, or None if unparseable
    crc_ok: bool
    coherence: float
    #: Mean product magnitude (~signal power) over the frame span.  A
    #: frame leaked from a neighbouring sub-band (5 MHz is an exact
    #: multiple of ``fs / lag``, so neighbours alias onto the *same*
    #: product phase and only amplitude distinguishes them) shows up with
    #: the channelizer's stopband attenuation here; the engine's
    #: arbitration keeps the strongest copy.
    band_power: float
    latency_products: int

    def decode_fields(self):
        """Every field determined by stream *content* alone.

        ``latency_products`` is excluded: it measures how long after the
        frame's last vote window the emit happened, which legitimately
        depends on block size.  The invariance guarantee — and the tests
        asserting it — covers exactly this tuple.
        """
        return (
            self.zigbee_channel,
            self.preamble_index,
            self.data_start,
            self.end_index,
            self.n_bits,
            self.bits,
            self.frame,
            self.crc_ok,
            self.coherence,
            self.band_power,
        )


class StreamSession:
    """Stateful preamble/header/body decoder for one channel's stream.

    ``dtype`` is the working precision of the product buffer and every
    derived cache: ``complex128`` (default, required by exact-mode
    bit-exactness guarantees) or ``complex64`` (fast mode's float32
    working dtype — decode-equivalent, half the memory traffic).
    """

    def __init__(
        self,
        decoder,
        zigbee_channel=None,
        scan_stride_bits=8,
        capture_tau=None,
        folds=SYMBEE_PREAMBLE_BITS,
        coherence_slack=0.2,
        coherence_min=0.5,
        dtype=np.complex128,
    ):
        self.decoder = decoder
        self.zigbee_channel = zigbee_channel
        self.capture_tau = capture_tau
        self.folds = int(folds)
        self.coherence_slack = float(coherence_slack)
        self.coherence_min = float(coherence_min)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise ValueError("dtype must be complex64 or complex128")
        if scan_stride_bits < 1:
            raise ValueError("scan_stride_bits must be >= 1")
        #: Products the search origin advances per missed chunk.
        self.stride = int(scan_stride_bits) * decoder.bit_period
        #: Extra products a fold window reaches past its start.
        self.span = (self.folds - 1) * decoder.bit_period
        #: Full deterministic scan-chunk length.
        self.scan_len = self.stride + self.span + decoder.window
        self._buf = _StreamBuffer(self.dtype)
        self._derived = _DerivedStreams(decoder, self.folds, self.dtype)
        #: Memoized index arrays for the scan and bit decode — their
        #: shapes repeat every call, and arange dominates small calls.
        self._edges_cache = {}
        self._starts_cache = {}
        self._state = "search"
        self._origin = 0          # absolute origin of the next scan chunk
        self._n0 = 0              # absolute preamble index of current capture
        self._data_start = 0
        self._coherence = 0.0
        self._total_bits = 0
        self.frames_emitted = 0
        self.crc_failures = 0
        self.header_rejects = 0
        self.partial_at_eof = 0
        self.products_in = 0

    # -- public API ---------------------------------------------------------

    def push_products(self, products):
        """Consume one chunk of compensated products; return decoded frames."""
        products = np.asarray(products, dtype=self.dtype)
        self._buf.append(products)
        self._derived.extend(products)
        self.products_in += products.size
        return self._drain(final=False)

    def finish(self):
        """Flush at end-of-stream; return any frames decodable from the tail."""
        frames = self._drain(final=True)
        if self._state != "search":
            # A capture whose frame never fully arrived.
            self.partial_at_eof += 1
            _PARTIAL_EOF.inc()
            self._state = "search"
        self._origin = self._buf.end
        self._buf.trim(self._origin)
        self._derived.trim(self._origin)
        return frames

    @property
    def horizon(self):
        """Lower bound on any future frame's ``preamble_index``.

        While searching, no capture can land before the scan origin;
        while a capture is in flight, a header reject could restart the
        search at ``n0 + bit_period``, so ``n0`` bounds from below.  The
        engine's cross-session arbitration releases a frame only once
        every session's horizon has passed it.
        """
        return self._origin if self._state == "search" else self._n0

    def stats(self):
        return {
            "zigbee_channel": self.zigbee_channel,
            "products_in": self.products_in,
            "frames_emitted": self.frames_emitted,
            "crc_failures": self.crc_failures,
            "header_rejects": self.header_rejects,
            "partial_at_eof": self.partial_at_eof,
        }

    # -- state machine ------------------------------------------------------

    def _drain(self, final):
        emitted = []
        while self._advance(final, emitted):
            pass
        # In search the restart points at or after the origin; during
        # header/body a reject can resume at n0 + bit_period, so keep n0.
        keep = self._origin if self._state == "search" else self._n0
        self._buf.trim(keep)
        self._derived.trim(keep)
        return emitted

    def _advance(self, final, emitted):
        """One state transition; False when blocked on more input."""
        if self._state == "search":
            return self._search(final)
        if self._state == "header":
            return self._header(final)
        return self._body(final, emitted)

    def _search(self, final):
        avail = self._buf.end - self._origin
        if avail >= self.scan_len:
            chunks = 1 + (avail - self.scan_len) // self.stride
            return self._search_scan(chunks)
        if final and avail >= self.span + self.decoder.window:
            # Last partial chunk: nothing after it will re-scan, so
            # accept a capture anywhere in it.  Rare (once per stream)
            # and shorter than a full chunk, so it goes through the
            # reference capture_preamble rather than the scanner; the
            # chunk content at end-of-stream is the same for any
            # blocking, so the outcome still is too.
            chunk = self._buf.view(self._origin, self._origin + avail)
            capture = capture_preamble(
                None,
                self.decoder,
                folds=self.folds,
                tau=self.capture_tau,
                coherence_slack=self.coherence_slack,
                coherence_min=self.coherence_min,
                unit_phasors=_unit_phasors(
                    self.decoder, np.asarray(chunk, dtype=np.complex128)
                ),
            )
            if capture is not None:
                self._n0 = self._origin + capture.index
                self._data_start = self._origin + capture.data_start
                self._coherence = capture.coherence
                self._state = "header"
                return True
            self._origin = self._buf.end
        return False

    def _search_scan(self, chunks):
        """Gate ``chunks`` consecutive buffered chunks from the caches.

        Chunk-by-chunk semantics identical to handing each chunk to
        :func:`capture_preamble` — the same cascade (count floor ->
        relative coherence -> concentration -> cluster-peak anchor ->
        accept only below ``stride``), the same outcome metrics — but
        every windowed statistic is a prefix difference from
        :class:`_DerivedStreams`: the count and coherence gates are
        evaluated for whole *groups* of chunks in a few dense vector
        passes, and the python loop below touches only the (rare)
        chunks whose best candidate coherence clears the absolute
        floor, running the concentration gate and cluster-anchor
        arithmetic on just their slice.  Chunk ``i``'s candidate window
        starts are ``[i * stride, i * stride + stride]`` inclusive: its
        fold profile has exactly ``stride + 1`` window positions, so
        the inclusive upper edge also reproduces the late hit that
        serial scanning finds and then rejects against the accept limit
        (chunk boundary positions are legitimately evaluated by both
        neighbouring chunks, exactly as serial scanning does).

        The dense passes run over at most ``_SCAN_GROUP_CHUNKS`` chunks
        at a time.  Grouping cannot change any outcome — every gate is
        a pure function of one chunk's slice and the chunk grid is
        anchored at the origin either way — but it bounds the dense
        work a call pays before an accept: header-reject cycles restart
        the search just one bit period ahead, and without the cap each
        restart would recompute dense statistics across everything
        buffered behind the reject.
        """
        s = self.stride
        w = self.decoder.window
        folds = self.folds
        tau = self.decoder.tau if self.capture_tau is None else int(self.capture_tau)
        floor = w - tau
        coh_min = self.coherence_min
        inv_fw = 1.0 / (folds * w)
        ninf = -np.inf
        derived = self._derived
        for g0 in range(0, chunks, _SCAN_GROUP_CHUNKS):
            gn = min(_SCAN_GROUP_CHUNKS, chunks - g0)
            o = self._origin
            n_starts = gn * s + 1
            cn = derived.count_prefix.view(o, o + n_starts + w)
            counts = cn[w:] - cn[:-w]

            # Per-chunk maxima via reduceat over the dense arrays:
            # segment i covers [i*s, (i+1)*s) (the last one runs to the
            # inclusive end of the array), and the shared right edge of
            # the interior chunks is patched in with one extra
            # elementwise maximum.
            edges = self._edges_cache.get(gn)
            if edges is None:
                edges = np.arange(0, gn * s, s)
                self._edges_cache[gn] = edges
            cand_max = np.maximum(np.maximum.reduceat(counts, edges), counts[s::s])
            has_cand = cand_max >= floor
            if not has_cand.any():
                _MISS_COUNT.inc(gn)
                self._origin = o + gn * s
                continue

            cm = derived.coherence_prefix.view(o, o + n_starts + w)
            coh = (cm[w:] - cm[:-w]) * inv_fw
            # Two collapses make the dense pass cheap.  First, the
            # relative threshold max(best - slack, coherence_min) is at
            # most best whenever best >= coherence_min, so a chunk
            # passes the coherence gate iff its best candidate clears
            # the absolute floor.  Second, masking to candidate
            # positions can only lower a chunk's best, so a chunk whose
            # best over *all* positions is below the floor misses
            # without ever building the candidate mask — the mask, the
            # masked best, and the whole concentration stage are built
            # per chunk below, only for the (rare) chunks that survive
            # this pre-gate.
            best_any = np.maximum(np.maximum.reduceat(coh, edges), coh[s::s])
            passing = (has_cand & (best_any >= coh_min)).nonzero()[0]

            def count_misses(upto):
                """Miss metrics for non-passing chunks below ``upto``.

                Passing chunks record their own outcome in the loop; a
                chunk past an accepted one records nothing (it is
                rescanned after the frame, exactly as serial scanning
                would).
                """
                n_count = int(upto - np.count_nonzero(has_cand[:upto]))
                n_coh = int(upto - passing.searchsorted(upto)) - n_count
                if n_count:
                    _MISS_COUNT.inc(n_count)
                if n_coh:
                    _MISS_COHERENCE.inc(n_coh)

            cu = None
            accepted = False
            for i in passing:
                i = int(i)
                lo = i * s
                sl = slice(lo, lo + s + 1)
                coh_c = np.where(counts[sl] >= floor, coh[sl], ninf)
                best = float(coh_c.max())
                if best < coh_min:
                    _MISS_COHERENCE.inc()
                    continue
                kept = coh_c >= max(best - self.coherence_slack, coh_min)
                if cu is None:
                    cu = derived.concentration_prefix.view(
                        o, o + n_starts + w
                    )
                du = cu[w + lo : w + lo + s + 1] - cu[lo : lo + s + 1]
                conc = np.sqrt(du.real * du.real + du.imag * du.imag) * (1.0 / w)
                conc_c = np.where(kept, conc, ninf)
                best_conc = float(conc_c.max())
                if best_conc < 0.6:
                    _MISS_CONCENTRATION.inc()
                    continue
                surv = conc_c >= max(best_conc - self.coherence_slack, 0.6)
                cand = surv.nonzero()[0]
                # Anchor inside the first qualifying cluster at its
                # count peak: the leading window qualifies while still
                # sliding onto the plateau, the peak marks the plateau
                # proper.
                first = int(cand[0])
                breaks = (cand[1:] - cand[:-1] > 1).nonzero()[0]
                cluster_end = int(cand[breaks[0]]) if breaks.size else int(cand[-1])
                n0 = first + int(np.argmax(counts[lo + first : lo + cluster_end + 1]))
                coherence = float(coh[lo + n0]) if surv[n0] else 1.0
                _HIT.inc()
                _COHERENCE.observe(coherence)
                if n0 >= s:
                    # Late hit: the next chunk re-finds it below its own
                    # accept limit, exactly as serial scanning would.
                    continue
                count_misses(i)
                self._origin = o + lo
                self._n0 = self._origin + n0
                self._data_start = self._n0 + folds * self.decoder.bit_period
                self._coherence = coherence
                self._state = "header"
                accepted = True
                break
            if accepted:
                return True
            count_misses(gn)
            self._origin = o + gn * s
        return True

    def _header(self, final):
        end = self._bits_end(_HEADER_BITS)
        if self._buf.end < end:
            return False
        bits = self._decode_bits(self._data_start, _HEADER_BITS)
        if len(bits) < _HEADER_BITS:
            return False if not final else self._reject_header()
        version = self._bits_to_int(bits[0:4])
        frame_type = self._bits_to_int(bits[4:8])
        length = self._bits_to_int(bits[8:16])
        if (
            version != VERSION
            or frame_type > MAX_KNOWN_FRAME_TYPE
            or (FRAME_TYPE_ACK < frame_type < FRAME_TYPE_TRANSPORT_BASE)
            or length > MAX_DATA_BITS
        ):
            return self._reject_header()
        self._total_bits = frame_overhead_bits() + length
        self._state = "body"
        return True

    def _body(self, final, emitted):
        end = self._bits_end(self._total_bits)
        if self._buf.end < end:
            return False
        bits = self._decode_bits(self._data_start, self._total_bits)
        frame = parse_frame_bits(bits)
        crc_ok = bool(frame is not None and frame.crc_ok)
        self.frames_emitted += 1
        _FRAMES.inc()
        if not crc_ok:
            self.crc_failures += 1
            _CRC_FAILED.inc()
        latency = self._buf.end - end
        _LATENCY.observe(latency)
        span = self._buf.view(self._n0, end)
        # Magnitude via single-rounding real ops (not np.abs's hypot
        # kernel) so the value cannot drift with buffer alignment —
        # the engine's leak arbitration compares it across sessions.
        band_power = float(
            np.mean(np.sqrt(span.real * span.real + span.imag * span.imag))
        )
        emitted.append(
            StreamFrame(
                zigbee_channel=self.zigbee_channel,
                preamble_index=self._n0,
                data_start=self._data_start,
                end_index=end,
                n_bits=self._total_bits,
                bits=bits,
                frame=frame,
                crc_ok=crc_ok,
                coherence=self._coherence,
                band_power=band_power,
                latency_products=latency,
            )
        )
        self._state = "search"
        if crc_ok:
            self._origin = (
                self._data_start + self._total_bits * self.decoder.bit_period
            )
        else:
            # A failed CRC means the capture was bogus (a neighbour's
            # leaked preamble, a collision) — resume one bit past it
            # instead of skipping the whole claimed span, so a real
            # frame shadowed inside that span is still found.
            self._origin = self._n0 + self.decoder.bit_period
        return True

    # -- helpers ------------------------------------------------------------

    def _bits_end(self, n_bits):
        """Absolute index one past the last vote window of ``n_bits``."""
        return (
            self._data_start
            + (n_bits - 1) * self.decoder.bit_period
            + self.decoder.window
        )

    def _decode_bits(self, start, n_bits):
        end = self._bits_end(n_bits)
        if REGISTRY.enabled:
            # The reference decode also feeds the vote-margin and
            # phase-run-length diagnostics; keep them exact when anyone
            # is looking.  The bits are identical either way — both
            # paths threshold the same integer window counts.
            segment = self._buf.view(start, end)
            result = self.decoder.decode_synchronized_mask(
                segment.imag >= 0.0, 0, n_bits
            )
            return result.bits
        w = self.decoder.window
        prefix = self._derived.mask_prefix.view(start, end + 1)
        cached = self._starts_cache.get(n_bits)
        if cached is None:
            starts = self.decoder.bit_period * np.arange(n_bits, dtype=np.int64)
            cached = (starts, starts + w)
            self._starts_cache[n_bits] = cached
        starts, ends = cached
        votes = prefix[ends] - prefix[starts]
        bits = votes >= self.decoder.tau_sync
        return tuple(bits.astype(np.uint8).tolist())

    def _reject_header(self):
        self.header_rejects += 1
        _HEADER_REJECTS.inc()
        self._state = "search"
        self._origin = self._n0 + self.decoder.bit_period
        return True

    @staticmethod
    def _bits_to_int(bits):
        value = 0
        for bit in bits:
            value = (value << 1) | int(bit)
        return value
