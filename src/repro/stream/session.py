"""Per-channel streaming decode session (preamble -> header -> body).

A :class:`StreamSession` consumes the CFO-compensated phasor-product
stream of one ZigBee channel in arbitrary-size pieces and emits complete
SymBee frames.  Every decision is a function of the *absolute* product
stream only, never of where pushes were cut, which is what makes
streaming decode bit-identical to a single whole-capture call:

* **Search** runs over deterministic scan chunks.  The session waits
  until the chunk ``[o, o + stride + span + window)`` is fully buffered
  (``o`` the scan origin, ``stride = scan_stride_bits * bit_period``,
  ``span = (folds - 1) * bit_period``), folds it with
  :func:`repro.core.preamble.capture_preamble`, and accepts a capture
  only in the first ``stride`` products — later hits are re-found by the
  next chunk, whose origin is ``o + stride`` regardless of blocking.
  (The capture gates are slice-relative, so scanning *fixed* chunks is
  what keeps them deterministic.)
* **Header** decodes the 24 header bits as soon as their last vote
  window is buffered, validates version / type / length, and on a bogus
  header resumes searching at ``n0 + bit_period`` (one bit past the
  false preamble).
* **Body** waits for the full frame (header + data + CRC vote windows),
  majority-votes every bit in one pass, parses, emits, and resumes
  searching right after the frame.

``finish()`` flushes at end-of-stream: the final partial chunk is
scanned once (accepting any position — no later chunk will see it), and
a capture whose frame ran off the stream is counted as partial.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_PREAMBLE_BITS
from repro.core.frame import (
    FRAME_TYPE_ACK,
    FRAME_TYPE_TRANSPORT_BASE,
    MAX_DATA_BITS,
    MAX_KNOWN_FRAME_TYPE,
    VERSION,
    frame_overhead_bits,
    parse_frame_bits,
)
from repro.core.preamble import capture_preamble
from repro.obs.metrics import REGISTRY

_HEADER_BITS = 24


def _unit_phasors(decoder, chunk):
    """Deterministic unit phasors for the preamble search.

    Same semantics as :meth:`repro.core.decoder.SymBeeDecoder.unit_phasors`
    (zero-amplitude products take the post-compensation zero-phase
    phasor), but built from single-rounding real ufunc ops — magnitude
    as ``sqrt(re*re + im*im)``, then one real divide per plane — so the
    result is bit-identical no matter how the chunk's buffer happens to
    be aligned.  numpy's reciprocal-then-complex-multiply path in the
    core decoder is faster but rounds differently depending on SIMD
    lane, which would leak block-size dependence into the capture
    coherence.
    """
    mag = np.sqrt(chunk.real * chunk.real + chunk.imag * chunk.imag)
    zero = mag == 0.0
    has_zero = bool(zero.any())
    if has_zero:
        mag[zero] = 1.0
    unit = np.empty(chunk.size, dtype=np.complex128)
    unit.real = chunk.real / mag
    unit.imag = chunk.imag / mag
    if has_zero:
        fill = decoder.rotation
        unit[zero] = 1.0 + 0.0j if fill is None else fill
    return unit

_FRAMES = REGISTRY.counter("stream.session.frames")
_CRC_FAILED = REGISTRY.counter("stream.session.crc_failed")
_HEADER_REJECTS = REGISTRY.counter("stream.session.header_rejects")
_PARTIAL_EOF = REGISTRY.counter("stream.session.partial_at_eof")
#: Products buffered past a frame's last vote window when it was emitted
#: — the decode latency floor in samples (one bit period = 640).
_LATENCY = REGISTRY.histogram(
    "stream.session.frame_latency",
    edges=(640, 2560, 5120, 10240, 20480, 40960, 81920, 163840),
)


class _StreamBuffer:
    """Growable product buffer addressed by absolute stream index."""

    def __init__(self, dtype=np.complex128):
        self._data = np.empty(8192, dtype=dtype)
        self._start = 0   # physical index of absolute index ``base``
        self._len = 0
        self.base = 0     # absolute stream index of the oldest kept product

    @property
    def end(self):
        """One past the newest buffered absolute index."""
        return self.base + self._len

    def append(self, arr):
        n = arr.size
        if n == 0:
            return
        if self._start + self._len + n > self._data.size:
            if self._start:
                # Compact trimmed space before growing.
                self._data[: self._len] = self._data[
                    self._start : self._start + self._len
                ]
                self._start = 0
            if self._len + n > self._data.size:
                cap = self._data.size
                while cap < self._len + n:
                    cap *= 2
                grown = np.empty(cap, dtype=self._data.dtype)
                grown[: self._len] = self._data[: self._len]
                self._data = grown
        lo = self._start + self._len
        self._data[lo : lo + n] = arr
        self._len += n

    def trim(self, lo):
        """Forget everything below absolute index ``lo`` (O(1))."""
        drop = min(max(lo - self.base, 0), self._len)
        self._start += drop
        self.base += drop
        self._len -= drop

    def view(self, lo, hi):
        """Zero-copy view of absolute range ``[lo, hi)`` (must be buffered)."""
        if lo < self.base or hi > self.end:
            raise IndexError(
                f"range [{lo}, {hi}) outside buffered [{self.base}, {self.end})"
            )
        a = self._start + (lo - self.base)
        return self._data[a : a + (hi - lo)]


@dataclass(frozen=True)
class StreamFrame:
    """One frame decoded out of the stream.

    Indices are absolute product-stream coordinates of the session's
    channel (for demux sessions: the filtered sub-band stream, offset
    from the wideband stream by the channelizer's group delay).
    ``latency_products`` is how many products past the frame's last vote
    window the session had buffered when it emitted — the block-induced
    decode latency.
    """

    zigbee_channel: "int | None"
    preamble_index: int
    data_start: int
    end_index: int
    n_bits: int
    bits: tuple
    frame: "object | None"    # SymBeeFrame, or None if unparseable
    crc_ok: bool
    coherence: float
    #: Mean product magnitude (~signal power) over the frame span.  A
    #: frame leaked from a neighbouring sub-band (5 MHz is an exact
    #: multiple of ``fs / lag``, so neighbours alias onto the *same*
    #: product phase and only amplitude distinguishes them) shows up with
    #: the channelizer's stopband attenuation here; the engine's
    #: arbitration keeps the strongest copy.
    band_power: float
    latency_products: int

    def decode_fields(self):
        """Every field determined by stream *content* alone.

        ``latency_products`` is excluded: it measures how long after the
        frame's last vote window the emit happened, which legitimately
        depends on block size.  The invariance guarantee — and the tests
        asserting it — covers exactly this tuple.
        """
        return (
            self.zigbee_channel,
            self.preamble_index,
            self.data_start,
            self.end_index,
            self.n_bits,
            self.bits,
            self.frame,
            self.crc_ok,
            self.coherence,
            self.band_power,
        )


class StreamSession:
    """Stateful preamble/header/body decoder for one channel's stream."""

    def __init__(
        self,
        decoder,
        zigbee_channel=None,
        scan_stride_bits=8,
        capture_tau=None,
        folds=SYMBEE_PREAMBLE_BITS,
        coherence_slack=0.2,
        coherence_min=0.5,
    ):
        self.decoder = decoder
        self.zigbee_channel = zigbee_channel
        self.capture_tau = capture_tau
        self.folds = int(folds)
        self.coherence_slack = float(coherence_slack)
        self.coherence_min = float(coherence_min)
        if scan_stride_bits < 1:
            raise ValueError("scan_stride_bits must be >= 1")
        #: Products the search origin advances per missed chunk.
        self.stride = int(scan_stride_bits) * decoder.bit_period
        #: Extra products a fold window reaches past its start.
        self.span = (self.folds - 1) * decoder.bit_period
        #: Full deterministic scan-chunk length.
        self.scan_len = self.stride + self.span + decoder.window
        self._buf = _StreamBuffer()
        self._state = "search"
        self._origin = 0          # absolute origin of the next scan chunk
        self._n0 = 0              # absolute preamble index of current capture
        self._data_start = 0
        self._coherence = 0.0
        self._total_bits = 0
        self.frames_emitted = 0
        self.crc_failures = 0
        self.header_rejects = 0
        self.partial_at_eof = 0
        self.products_in = 0

    # -- public API ---------------------------------------------------------

    def push_products(self, products):
        """Consume one chunk of compensated products; return decoded frames."""
        products = np.asarray(products, dtype=np.complex128)
        self._buf.append(products)
        self.products_in += products.size
        return self._drain(final=False)

    def finish(self):
        """Flush at end-of-stream; return any frames decodable from the tail."""
        frames = self._drain(final=True)
        if self._state != "search":
            # A capture whose frame never fully arrived.
            self.partial_at_eof += 1
            _PARTIAL_EOF.inc()
            self._state = "search"
        self._origin = self._buf.end
        self._buf.trim(self._origin)
        return frames

    @property
    def horizon(self):
        """Lower bound on any future frame's ``preamble_index``.

        While searching, no capture can land before the scan origin;
        while a capture is in flight, a header reject could restart the
        search at ``n0 + bit_period``, so ``n0`` bounds from below.  The
        engine's cross-session arbitration releases a frame only once
        every session's horizon has passed it.
        """
        return self._origin if self._state == "search" else self._n0

    def stats(self):
        return {
            "zigbee_channel": self.zigbee_channel,
            "products_in": self.products_in,
            "frames_emitted": self.frames_emitted,
            "crc_failures": self.crc_failures,
            "header_rejects": self.header_rejects,
            "partial_at_eof": self.partial_at_eof,
        }

    # -- state machine ------------------------------------------------------

    def _drain(self, final):
        emitted = []
        while self._advance(final, emitted):
            pass
        # In search the restart points at or after the origin; during
        # header/body a reject can resume at n0 + bit_period, so keep n0.
        keep = self._origin if self._state == "search" else self._n0
        self._buf.trim(keep)
        return emitted

    def _advance(self, final, emitted):
        """One state transition; False when blocked on more input."""
        if self._state == "search":
            return self._search(final)
        if self._state == "header":
            return self._header(final)
        return self._body(final, emitted)

    def _search(self, final):
        avail = self._buf.end - self._origin
        if avail >= self.scan_len:
            chunk_len, accept_limit = self.scan_len, self.stride
        elif final and avail >= self.span + self.decoder.window:
            # Last partial chunk: nothing after it will re-scan, so
            # accept a capture anywhere in it.
            chunk_len, accept_limit = avail, avail
        else:
            return False
        chunk = self._buf.view(self._origin, self._origin + chunk_len)
        capture = capture_preamble(
            None,
            self.decoder,
            folds=self.folds,
            tau=self.capture_tau,
            coherence_slack=self.coherence_slack,
            coherence_min=self.coherence_min,
            unit_phasors=_unit_phasors(self.decoder, chunk),
        )
        if capture is not None and capture.index < accept_limit:
            self._n0 = self._origin + capture.index
            self._data_start = self._origin + capture.data_start
            self._coherence = capture.coherence
            self._state = "header"
            return True
        if chunk_len < self.scan_len:
            # Final partial chunk exhausted.
            self._origin = self._buf.end
            return False
        self._origin += self.stride
        return True

    def _header(self, final):
        end = self._bits_end(_HEADER_BITS)
        if self._buf.end < end:
            return False
        bits = self._decode_bits(self._data_start, _HEADER_BITS)
        if len(bits) < _HEADER_BITS:
            return False if not final else self._reject_header()
        version = self._bits_to_int(bits[0:4])
        frame_type = self._bits_to_int(bits[4:8])
        length = self._bits_to_int(bits[8:16])
        if (
            version != VERSION
            or frame_type > MAX_KNOWN_FRAME_TYPE
            or (FRAME_TYPE_ACK < frame_type < FRAME_TYPE_TRANSPORT_BASE)
            or length > MAX_DATA_BITS
        ):
            return self._reject_header()
        self._total_bits = frame_overhead_bits() + length
        self._state = "body"
        return True

    def _body(self, final, emitted):
        end = self._bits_end(self._total_bits)
        if self._buf.end < end:
            return False
        bits = self._decode_bits(self._data_start, self._total_bits)
        frame = parse_frame_bits(bits)
        crc_ok = bool(frame is not None and frame.crc_ok)
        self.frames_emitted += 1
        _FRAMES.inc()
        if not crc_ok:
            self.crc_failures += 1
            _CRC_FAILED.inc()
        latency = self._buf.end - end
        _LATENCY.observe(latency)
        span = self._buf.view(self._n0, end)
        # Magnitude via single-rounding real ops (not np.abs's hypot
        # kernel) so the value cannot drift with buffer alignment —
        # the engine's leak arbitration compares it across sessions.
        band_power = float(
            np.mean(np.sqrt(span.real * span.real + span.imag * span.imag))
        )
        emitted.append(
            StreamFrame(
                zigbee_channel=self.zigbee_channel,
                preamble_index=self._n0,
                data_start=self._data_start,
                end_index=end,
                n_bits=self._total_bits,
                bits=bits,
                frame=frame,
                crc_ok=crc_ok,
                coherence=self._coherence,
                band_power=band_power,
                latency_products=latency,
            )
        )
        self._state = "search"
        if crc_ok:
            self._origin = (
                self._data_start + self._total_bits * self.decoder.bit_period
            )
        else:
            # A failed CRC means the capture was bogus (a neighbour's
            # leaked preamble, a collision) — resume one bit past it
            # instead of skipping the whole claimed span, so a real
            # frame shadowed inside that span is still found.
            self._origin = self._n0 + self.decoder.bit_period
        return True

    # -- helpers ------------------------------------------------------------

    def _bits_end(self, n_bits):
        """Absolute index one past the last vote window of ``n_bits``."""
        return (
            self._data_start
            + (n_bits - 1) * self.decoder.bit_period
            + self.decoder.window
        )

    def _decode_bits(self, start, n_bits):
        segment = self._buf.view(start, self._bits_end(n_bits))
        result = self.decoder.decode_synchronized_mask(
            segment.imag >= 0.0, 0, n_bits
        )
        return result.bits

    def _reject_header(self):
        self.header_rejects += 1
        _HEADER_REJECTS.inc()
        self._state = "search"
        self._origin = self._n0 + self.decoder.bit_period
        return True

    @staticmethod
    def _bits_to_int(bits):
        value = 0
        for bit in bits:
            value = (value << 1) | int(bit)
        return value
