"""The continuously-listening receive engine: front ends + sessions.

One :class:`StreamEngine` owns, per decoded ZigBee channel, a front end
(products) and a :class:`repro.stream.session.StreamSession` (frames),
and feeds every incoming sample block through all of them.  Two modes:

* **wideband** (default): one session decoding the whole 20 MHz capture
  directly, with the Appendix-B CFO rotation for its reference ZigBee
  channel — exactly the batch :class:`repro.core.SymBeeLink` receive
  path, restructured to run block-by-block.  Bit-identical to batch for
  any block size.
* **demux**: one :class:`repro.stream.frontend.ChannelizerFrontEnd` +
  session per overlapping ZigBee channel, so concurrent senders on
  different channels decode from the same stream.  Wideband sessions
  cannot do this: every overlapping pair's CFO correction wraps to the
  same +4pi/5 (the Appendix-B constant), so in the product domain the
  channels are rotationally indistinguishable — separation must happen
  in the sample domain, before the autocorrelation.

Use :func:`batch_decode_stream` as the one-shot reference: it runs the
identical engine over the whole capture as a single block, which is what
the block-size-invariance guarantee is measured against.
"""

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.core.decoder import SymBeeDecoder
from repro.core.phase import cfo_compensation_phase
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.stream.frontend import (
    ChannelizerFrontEnd,
    StreamingFrontEnd,
    exact_cmul,
)
from repro.stream.ring import RingBufferSource
from repro.stream.session import StreamSession
from repro.zigbee.channels import (
    frequency_offset_hz,
    overlapping_zigbee_channels,
)

_BLOCKS = REGISTRY.counter("stream.engine.blocks")
_SAMPLES = REGISTRY.counter("stream.engine.samples_in")
_FRAMES = REGISTRY.counter("stream.engine.frames")
_SUPPRESSED = REGISTRY.counter("stream.engine.leak_suppressed")

#: Default demux channelizer: short enough to keep most of the 84-sample
#: plateau (an ``ntaps``-tap FIR costs ``ntaps - 1`` plateau samples),
#: wide enough to pass the 2 MHz ZigBee main lobe.
DEMUX_NTAPS = 21
DEMUX_CUTOFF_HZ = 1.4e6


class _ChannelPath:
    """One decoded channel: its front end, rotation and session."""

    __slots__ = ("zigbee_channel", "front_end", "rotation", "session")

    def __init__(self, zigbee_channel, front_end, rotation, session):
        self.zigbee_channel = zigbee_channel
        self.front_end = front_end
        self.rotation = rotation
        self.session = session


class StreamEngine:
    """Block-by-block SymBee receiver over an unbounded sample stream."""

    def __init__(
        self,
        wifi_channel=1,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        zigbee_channels=None,
        demux=False,
        scan_stride_bits=8,
        capture_tau=None,
        tau=None,
        tau_sync=None,
        ntaps=DEMUX_NTAPS,
        cutoff_hz=DEMUX_CUTOFF_HZ,
    ):
        self.wifi_channel = wifi_channel
        self.sample_rate = float(sample_rate)
        self.demux = bool(demux)
        lag = int(round(self.sample_rate * 0.8e-6))
        if zigbee_channels is None:
            channels = (
                overlapping_zigbee_channels(wifi_channel) if demux else [13]
            )
        else:
            channels = list(zigbee_channels)
        if not channels:
            raise ValueError("no ZigBee channels to decode")
        if not demux and len(channels) > 1:
            raise ValueError(
                "wideband mode decodes one reference channel: every "
                "overlapping pair's CFO correction wraps to the same "
                "+4pi/5 (Appendix B), so wideband sessions cannot tell "
                "channels apart — use demux=True"
            )
        self._paths = []
        for channel in channels:
            offset = frequency_offset_hz(channel, wifi_channel)
            if demux:
                front_end = ChannelizerFrontEnd(
                    offset,
                    self.sample_rate,
                    lag,
                    ntaps=ntaps,
                    cutoff_hz=cutoff_hz,
                )
                # The channelized stream sits at its own baseband: the
                # plateaus are at +-4pi/5 already, no rotation needed.
                decoder = SymBeeDecoder(
                    sample_rate=self.sample_rate,
                    tau=tau,
                    tau_sync=tau_sync,
                    cfo_correction=None,
                )
                rotation = None
                # The FIR eats ntaps - 1 plateau samples, so the capture
                # count floor must drop by as much (plus edge margin).
                session_tau = capture_tau
                if session_tau is None:
                    session_tau = min(ntaps - 1 + 8, decoder.window // 2 - 1)
            else:
                front_end = StreamingFrontEnd(lag)
                decoder = SymBeeDecoder(
                    sample_rate=self.sample_rate,
                    tau=tau,
                    tau_sync=tau_sync,
                    cfo_correction=cfo_compensation_phase(
                        offset, lag, self.sample_rate
                    ),
                )
                rotation = decoder.rotation
                session_tau = capture_tau
            self._paths.append(
                _ChannelPath(
                    zigbee_channel=channel,
                    front_end=front_end,
                    rotation=rotation,
                    session=StreamSession(
                        decoder,
                        zigbee_channel=channel,
                        scan_stride_bits=scan_stride_bits,
                        capture_tau=session_tau,
                    ),
                )
            )
        self.blocks_in = 0
        self.samples_in = 0
        self.frames_out = 0
        self.frames_suppressed = 0
        #: Emitted frames awaiting cross-session leak arbitration.
        self._pending = []

    @property
    def zigbee_channels(self):
        return [path.zigbee_channel for path in self._paths]

    @property
    def sessions(self):
        return [path.session for path in self._paths]

    def process_block(self, block):
        """Feed one sample block to every channel; return decoded frames."""
        block = np.asarray(block, dtype=np.complex128)
        with TRACER.span("stream.block", samples=int(block.size)):
            for path in self._paths:
                fe_block = path.front_end.process(block)
                products = fe_block.products
                if path.rotation is not None and products.size:
                    products = exact_cmul(products, path.rotation)
                self._pending.extend(path.session.push_products(products))
            frames = self._release(final=False)
        self.blocks_in += 1
        self.samples_in += int(block.size)
        self.frames_out += len(frames)
        _BLOCKS.inc()
        _SAMPLES.inc(int(block.size))
        if frames:
            _FRAMES.inc(len(frames))
        return frames

    def finish(self):
        """Flush every session at end-of-stream; return the tail frames."""
        with TRACER.span("stream.finish"):
            for path in self._paths:
                self._pending.extend(path.session.finish())
            frames = self._release(final=True)
        self.frames_out += len(frames)
        if frames:
            _FRAMES.inc(len(frames))
        return frames

    def _release(self, final):
        """Cross-session leak arbitration over the pending frame pool.

        Adjacent sub-bands alias onto the same product phase (their 5 MHz
        spacing is a multiple of ``fs / lag``), so a strong sender also
        decodes — attenuated but otherwise faithful — on neighbouring
        idle sessions.  Among time-overlapping pending frames carrying
        *identical bits* on different sessions, only the strongest
        ``band_power`` copy survives (ties break toward the lower channel
        number, keeping the decision deterministic).

        A frame is held until every session's :attr:`StreamSession.horizon`
        has passed its end — after that no session can emit anything
        overlapping it, so the decision is final and independent of block
        boundaries.  Released frames come out sorted by stream position.
        """
        if not self._pending:
            return []
        if final:
            ready, held = list(self._pending), []
        else:
            horizon = min(path.session.horizon for path in self._paths)
            ready, held = [], []
            for frame in self._pending:
                (ready if frame.end_index < horizon else held).append(frame)
            # Arbitration is decided per overlap-connected group: demote
            # any ready frame overlapping a held one (and cascade), so a
            # group is only ever judged with all its members present.
            demoted = True
            while demoted and ready:
                demoted = False
                for frame in list(ready):
                    if any(
                        frame.preamble_index < other.end_index
                        and other.preamble_index < frame.end_index
                        for other in held
                    ):
                        ready.remove(frame)
                        held.append(frame)
                        demoted = True
        if not ready:
            return []
        released = []
        for frame in ready:
            key = (frame.band_power, -frame.zigbee_channel)
            beaten = any(
                other.zigbee_channel != frame.zigbee_channel
                and other.bits == frame.bits
                and other.preamble_index < frame.end_index
                and frame.preamble_index < other.end_index
                and (other.band_power, -other.zigbee_channel) > key
                for other in ready
            )
            if beaten:
                self.frames_suppressed += 1
                _SUPPRESSED.inc()
            else:
                released.append(frame)
        self._pending = held
        released.sort(key=lambda f: (f.preamble_index, f.zigbee_channel))
        return released

    def run(self, blocks):
        """Drain a block source (any iterable, e.g. a ring) and finish.

        A :class:`repro.stream.ring.RingBufferSource` iterates its queued
        blocks; for live producer/consumer interleaving, call
        :meth:`process_block` per popped block instead.
        """
        frames = []
        for block in blocks:
            frames.extend(self.process_block(block))
        frames.extend(self.finish())
        return frames

    def stats(self):
        return {
            "mode": "demux" if self.demux else "wideband",
            "blocks_in": self.blocks_in,
            "samples_in": self.samples_in,
            "frames_out": self.frames_out,
            "sessions": [path.session.stats() for path in self._paths],
        }


def batch_decode_stream(samples, **engine_kwargs):
    """Decode a whole capture in one shot — the batch reference.

    Builds a :class:`StreamEngine` with the given configuration, feeds the
    entire capture as a single block and flushes.  Streaming the same
    capture through the same configuration in *any* block sizes yields a
    bit-identical frame list; the invariance tests and the throughput
    benchmark both compare against this function.
    """
    engine = StreamEngine(**engine_kwargs)
    frames = engine.process_block(np.asarray(samples, dtype=np.complex128))
    frames.extend(engine.finish())
    return frames


__all__ = [
    "StreamEngine",
    "RingBufferSource",
    "batch_decode_stream",
]
