"""The continuously-listening receive engine: front ends + sessions.

One :class:`StreamEngine` owns, per decoded ZigBee channel, a front end
(products) and a :class:`repro.stream.session.StreamSession` (frames),
and feeds every incoming sample block through all of them.  Two modes:

* **wideband** (default): one session decoding the whole 20 MHz capture
  directly, with the Appendix-B CFO rotation for its reference ZigBee
  channel — exactly the batch :class:`repro.core.SymBeeLink` receive
  path, restructured to run block-by-block.  Bit-identical to batch for
  any block size.
* **demux**: one :class:`repro.stream.frontend.ChannelizerFrontEnd` +
  session per overlapping ZigBee channel, so concurrent senders on
  different channels decode from the same stream.  Wideband sessions
  cannot do this: every overlapping pair's CFO correction wraps to the
  same +4pi/5 (the Appendix-B constant), so in the product domain the
  channels are rotationally indistinguishable — separation must happen
  in the sample domain, before the autocorrelation.

The demux path has three performance controls (PR 5), all defaulting to
the exact full-rate behaviour:

* ``decimation`` — each sub-band is decimated inside the channelizer;
  every session-side quantity (lag, window, bit period, vote taus)
  scales through the decimation-aware
  :class:`repro.core.decoder.SymBeeDecoder`.  The factor must divide
  the lag, window and bit period (``gcd = 4`` at 20 Msps, so 1, 2 or 4).
* ``mode`` — ``"exact"`` (bit-exact block-size invariance) or
  ``"fast"`` (native kernels, mixer folded into the filter taps;
  decode-equivalent).
* ``run(blocks, jobs=n)`` — per-channel demux across a persistent
  :class:`repro.runtime.workerpool.BlockWorkerPool` (PR 6): channel
  workers are spawned once, every sample block is published once into
  shared memory and consumed zero-copy by all workers, and handoff is
  pipelined through bounded per-worker queues.  Channels are fully
  independent between the front end and arbitration, workers ship
  per-channel frames and metric shards back, and the parent merges
  shards and arbitrates once over the complete pool, so serial and
  parallel runs report identical frames and identical ``stream.*``
  metric totals.  When ``jobs > 1`` cannot apply (wideband, or a
  single demux channel) the engine counts ``stream.jobs_ignored`` and
  logs a warning instead of silently running serial.

Use :func:`batch_decode_stream` as the one-shot reference: it runs the
identical engine over the whole capture as a single block, which is what
the block-size-invariance guarantee is measured against.
"""

import logging
import time

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.core.decoder import SymBeeDecoder
from repro.core.phase import cfo_compensation_phase
from repro.dsp.kernels import cmul, validate_mode
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.runtime.executor import resolve_jobs
from repro.stream.frontend import (
    ChannelizerFrontEnd,
    FastChannelBank,
    StreamingFrontEnd,
)
from repro.stream.ring import RingBufferSource
from repro.stream.scan import DEFAULT_SCAN_KERNEL, validate_scan_kernel
from repro.stream.session import StreamSession
from repro.zigbee.channels import (
    frequency_offset_hz,
    overlapping_zigbee_channels,
)

_BLOCKS = REGISTRY.counter("stream.engine.blocks")
_SAMPLES = REGISTRY.counter("stream.engine.samples_in")
_FRAMES = REGISTRY.counter("stream.engine.frames")
_SUPPRESSED = REGISTRY.counter("stream.engine.leak_suppressed")
_JOBS_IGNORED = REGISTRY.counter("stream.jobs_ignored")
#: Wall-clock health signals (the ``stream.health.*`` / gauge namespace
#: is *excluded* from the serial==parallel determinism contract: timing
#: is inherently run-dependent, and workers observe per-channel blocks
#: where the serial engine observes whole-engine blocks).
_BLOCK_SECONDS = REGISTRY.histogram(
    "stream.health.block_seconds",
    edges=(0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0),
)
#: Stream-time over wall-time — >= 1.0 means the decode is holding the
#: input's realtime line (serial: per block; parallel: cumulative).
_MARGIN = REGISTRY.gauge("stream.realtime_margin")

_LOG = logging.getLogger(__name__)

#: Default demux channelizer: short enough to keep most of the 84-sample
#: plateau (an ``ntaps``-tap FIR costs ``ntaps - 1`` plateau samples),
#: wide enough to pass the 2 MHz ZigBee main lobe.
DEMUX_NTAPS = 21
DEMUX_CUTOFF_HZ = 1.4e6


class _ChannelPath:
    """One decoded channel: its front end, rotation, mode and session."""

    __slots__ = ("zigbee_channel", "front_end", "rotation", "mode", "session")

    def __init__(self, zigbee_channel, front_end, rotation, mode, session):
        self.zigbee_channel = zigbee_channel
        self.front_end = front_end
        self.rotation = rotation
        self.mode = mode
        self.session = session

    def process_block(self, block):
        """Feed one sample block through this channel; return its frames.

        The complete per-channel chain — front end, CFO rotation,
        session — with no engine-level bookkeeping, so parallel workers
        can drive a path directly without double-counting the engine's
        block/sample metrics.
        """
        return self.push_front_end_block(self.front_end.process(block))

    def push_front_end_block(self, fe_block):
        """Rotation + session tail of the chain, given front-end output.

        Split out so :class:`~repro.stream.frontend.FastChannelBank`
        can filter all channels at once and hand each path its block.
        """
        products = fe_block.products
        if self.rotation is not None and products.size:
            products = cmul(products, self.rotation, self.mode)
        return self.session.push_products(products)

    def flush_front_end(self):
        """Emit the front end's deferred tail at end-of-stream.

        Fast-mode channelizers withhold up to one filtered output per
        channel mid-stream to keep products cut-invariant (see
        :meth:`repro.stream.frontend.ChannelizerFrontEnd.flush`); this
        pushes that tail through the session before the session itself
        is flushed.
        """
        return self.push_front_end_block(self.front_end.flush())


class StreamEngine:
    """Block-by-block SymBee receiver over an unbounded sample stream."""

    def __init__(
        self,
        wifi_channel=1,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        zigbee_channels=None,
        demux=False,
        scan_stride_bits=8,
        capture_tau=None,
        tau=None,
        tau_sync=None,
        ntaps=DEMUX_NTAPS,
        cutoff_hz=DEMUX_CUTOFF_HZ,
        decimation=None,
        mode="exact",
        working_dtype=None,
        scan_kernel=DEFAULT_SCAN_KERNEL,
    ):
        self.wifi_channel = wifi_channel
        self.sample_rate = float(sample_rate)
        self.demux = bool(demux)
        self.decimation = 1 if decimation is None else int(decimation)
        self.mode = validate_mode(mode)
        #: Scanner backend every session runs (see
        #: :mod:`repro.stream.scan`); validated here so a bad name fails
        #: at construction, not at the first worker spawn.
        self.scan_kernel = validate_scan_kernel(scan_kernel).name
        self.working_dtype = (
            None if working_dtype is None else np.dtype(working_dtype)
        )
        if self.mode == "exact" and self.working_dtype not in (
            None,
            np.dtype(np.complex128),
        ):
            raise ValueError("exact mode requires a complex128 working dtype")
        if not self.demux and self.decimation != 1:
            raise ValueError(
                "decimation requires demux=True: the wideband path has no "
                "channelizer, so there is no anti-alias filter to decimate "
                "behind"
            )
        lag = int(round(self.sample_rate * 0.8e-6))
        if zigbee_channels is None:
            channels = (
                overlapping_zigbee_channels(wifi_channel) if demux else [13]
            )
        else:
            channels = list(zigbee_channels)
        if not channels:
            raise ValueError("no ZigBee channels to decode")
        if not demux and len(channels) > 1:
            raise ValueError(
                "wideband mode decodes one reference channel: every "
                "overlapping pair's CFO correction wraps to the same "
                "+4pi/5 (Appendix B), so wideband sessions cannot tell "
                "channels apart — use demux=True"
            )
        #: Constructor configuration minus the channel list — what a
        #: parallel worker needs to rebuild one single-channel engine
        #: with identical thresholds (see :meth:`run`).
        self._engine_kwargs = {
            "wifi_channel": wifi_channel,
            "sample_rate": self.sample_rate,
            "demux": self.demux,
            "scan_stride_bits": scan_stride_bits,
            "capture_tau": capture_tau,
            "tau": tau,
            "tau_sync": tau_sync,
            "ntaps": ntaps,
            "cutoff_hz": cutoff_hz,
            "decimation": self.decimation,
            "mode": self.mode,
            "working_dtype": self.working_dtype,
            "scan_kernel": self.scan_kernel,
        }
        self._paths = []
        for channel in channels:
            offset = frequency_offset_hz(channel, wifi_channel)
            if demux:
                front_end = ChannelizerFrontEnd(
                    offset,
                    self.sample_rate,
                    lag,
                    ntaps=ntaps,
                    cutoff_hz=cutoff_hz,
                    decimation=self.decimation,
                    mode=self.mode,
                    working_dtype=self.working_dtype,
                )
                # The channelized stream sits at its own baseband: the
                # plateaus are at +-4pi/5 already, no CFO rotation needed.
                # Fast mode skips the channelizer's output-rate mixer
                # multiply and compensates with one constant product
                # rotation here instead (see ChannelizerFrontEnd).
                decoder = SymBeeDecoder(
                    sample_rate=self.sample_rate,
                    tau=tau,
                    tau_sync=tau_sync,
                    cfo_correction=None,
                    decimation=self.decimation,
                )
                rotation = front_end.product_rotation
                if rotation == 1.0:
                    rotation = None
                # The FIR eats ntaps - 1 plateau samples, so the capture
                # count floor must drop by as much (plus edge margin) —
                # in decimated-output units, rounded up so the floor is
                # never optimistic.
                session_tau = capture_tau
                if session_tau is None:
                    session_tau = min(
                        -(-(ntaps - 1 + 8) // self.decimation),
                        decoder.window // 2 - 1,
                    )
            else:
                front_end = StreamingFrontEnd(
                    lag,
                    mode=self.mode,
                    dtype=self.working_dtype or np.complex128,
                )
                decoder = SymBeeDecoder(
                    sample_rate=self.sample_rate,
                    tau=tau,
                    tau_sync=tau_sync,
                    cfo_correction=cfo_compensation_phase(
                        offset, lag, self.sample_rate
                    ),
                )
                rotation = decoder.rotation
                session_tau = capture_tau
            self._paths.append(
                _ChannelPath(
                    zigbee_channel=channel,
                    front_end=front_end,
                    rotation=rotation,
                    mode=self.mode,
                    session=StreamSession(
                        decoder,
                        zigbee_channel=channel,
                        scan_stride_bits=scan_stride_bits,
                        capture_tau=session_tau,
                        dtype=self.working_dtype or np.complex128,
                        scan_kernel=self.scan_kernel,
                    ),
                )
            )
        #: Shared-GEMM filter bank: in a fast-mode decimating demux the
        #: channels all buffer the same raw stream, so one stacked
        #: matrix product filters every channel per block (serial runs
        #: only — parallel workers own one channel each and keep the
        #: single-channel kernel).
        self._bank = None
        if (
            demux
            and self.mode == "fast"
            and self.decimation > 1
            and len(self._paths) > 1
        ):
            self._bank = FastChannelBank(
                [path.front_end for path in self._paths]
            )
        self.blocks_in = 0
        self.samples_in = 0
        self.frames_out = 0
        self.frames_suppressed = 0
        #: Emitted frames awaiting cross-session leak arbitration.
        self._pending = []
        #: Per-channel session stats shipped back by parallel workers
        #: (the local sessions stay idle in a parallel run).
        self._worker_session_stats = None
        #: Transport stats of the last parallel run's worker pool.
        self._pool_stats = None

    @property
    def zigbee_channels(self):
        return [path.zigbee_channel for path in self._paths]

    @property
    def sessions(self):
        return [path.session for path in self._paths]

    def process_block(self, block):
        """Feed one sample block to every channel; return decoded frames."""
        metered = REGISTRY.enabled
        if metered:
            t0 = time.perf_counter()
        # Convert to the working dtype once, not once per channel path.
        block = np.asarray(block, dtype=self.working_dtype or np.complex128)
        with TRACER.span("stream.block", samples=int(block.size)):
            if self._bank is not None:
                fe_blocks = self._bank.process_block(block)
                for path, fe_block in zip(self._paths, fe_blocks):
                    self._pending.extend(path.push_front_end_block(fe_block))
            else:
                for path in self._paths:
                    self._pending.extend(path.process_block(block))
            frames = self._release(final=False)
        self.blocks_in += 1
        self.samples_in += int(block.size)
        self.frames_out += len(frames)
        _BLOCKS.inc()
        _SAMPLES.inc(int(block.size))
        if frames:
            _FRAMES.inc(len(frames))
        if metered:
            elapsed = time.perf_counter() - t0
            _BLOCK_SECONDS.observe(elapsed)
            if elapsed > 0 and block.size:
                _MARGIN.set((block.size / self.sample_rate) / elapsed)
        return frames

    def finish(self):
        """Flush every front end and session at end-of-stream."""
        with TRACER.span("stream.finish"):
            if self._bank is not None:
                fe_blocks = self._bank.flush()
                for path, fe_block in zip(self._paths, fe_blocks):
                    self._pending.extend(path.push_front_end_block(fe_block))
            else:
                for path in self._paths:
                    self._pending.extend(path.flush_front_end())
            for path in self._paths:
                self._pending.extend(path.session.finish())
            frames = self._release(final=True)
        self.frames_out += len(frames)
        if frames:
            _FRAMES.inc(len(frames))
        return frames

    def _release(self, final):
        """Cross-session leak arbitration over the pending frame pool.

        Adjacent sub-bands alias onto the same product phase (their 5 MHz
        spacing is a multiple of ``fs / lag``), so a strong sender also
        decodes — attenuated but otherwise faithful — on neighbouring
        idle sessions.  Among time-overlapping pending frames carrying
        *identical bits* on different sessions, only the strongest
        ``band_power`` copy survives (ties break toward the lower channel
        number, keeping the decision deterministic).

        A frame is held until every session's :attr:`StreamSession.horizon`
        has passed its end — after that no session can emit anything
        overlapping it, so the decision is final and independent of block
        boundaries.  Released frames come out sorted by stream position.

        Incremental (per-block) release and one final whole-pool pass
        decide identically: demotion keeps every overlap-connected group
        together until all its members have arrived, and band-power
        arbitration only ever compares frames within one group — which
        is why the parallel path can skip incremental release entirely
        and arbitrate once at the end.
        """
        if not self._pending:
            return []
        if final:
            ready, held = list(self._pending), []
        else:
            horizon = min(path.session.horizon for path in self._paths)
            ready, held = [], []
            for frame in self._pending:
                (ready if frame.end_index < horizon else held).append(frame)
            # Arbitration is decided per overlap-connected group: demote
            # any ready frame overlapping a held one (and cascade), so a
            # group is only ever judged with all its members present.
            demoted = True
            while demoted and ready:
                demoted = False
                for frame in list(ready):
                    if any(
                        frame.preamble_index < other.end_index
                        and other.preamble_index < frame.end_index
                        for other in held
                    ):
                        ready.remove(frame)
                        held.append(frame)
                        demoted = True
        if not ready:
            return []
        released = []
        for frame in ready:
            key = (frame.band_power, -frame.zigbee_channel)
            beaten = any(
                other.zigbee_channel != frame.zigbee_channel
                and other.bits == frame.bits
                and other.preamble_index < frame.end_index
                and frame.preamble_index < other.end_index
                and (other.band_power, -other.zigbee_channel) > key
                for other in ready
            )
            if beaten:
                self.frames_suppressed += 1
                _SUPPRESSED.inc()
            else:
                released.append(frame)
        self._pending = held
        released.sort(key=lambda f: (f.preamble_index, f.zigbee_channel))
        return released

    def run(self, blocks, jobs=None, collector=None):
        """Drain a block source (any iterable, e.g. a ring) and finish.

        A :class:`repro.stream.ring.RingBufferSource` iterates its queued
        blocks; for live producer/consumer interleaving, call
        :meth:`process_block` per popped block instead.

        ``jobs`` (default: the ``REPRO_JOBS`` environment variable, i.e.
        serial) fans the demux channels out across a persistent
        :class:`repro.runtime.workerpool.BlockWorkerPool` — workers are
        spawned once, each block is published once into shared memory
        while workers chew on earlier blocks, and each worker runs its
        channels' full front-end + session chains.  The parent
        arbitrates leak suppression once over the complete frame pool.
        The frame list, per-session stats and ``stream.*`` metric totals
        are identical to a serial run; requires ``demux`` with more than
        one channel.  A ``jobs > 1`` request the engine cannot honour
        (wideband, or a single demux channel) increments the
        ``stream.jobs_ignored`` counter and logs a warning before
        running serial.

        ``collector`` (a :class:`repro.obs.live.LiveCollector`) is
        offered a tick after every block; in a pooled run the engine
        also drains the pool's telemetry side queue into it so the live
        view includes worker progress, then drops that preview once the
        join-time authoritative shard merge lands.  The caller finalizes
        the collector after :meth:`run` returns, which is what makes the
        last sample's cumulative totals equal the end-of-run registry
        snapshot.
        """
        jobs = resolve_jobs(jobs)
        if jobs != 1:
            if self.demux and len(self._paths) > 1:
                return self._run_parallel(blocks, jobs, collector)
            _JOBS_IGNORED.inc()
            _LOG.warning(
                "jobs=%d ignored: parallel demux needs demux=True with "
                ">1 channel (engine has %s%d); running serial",
                jobs,
                "demux, " if self.demux else "wideband, ",
                len(self._paths),
            )
        frames = []
        for block in blocks:
            frames.extend(self.process_block(block))
            if collector is not None:
                collector.maybe_tick()
        frames.extend(self.finish())
        return frames

    def _run_parallel(self, blocks, jobs, collector=None):
        """Persistent-pool per-channel fan-out behind :meth:`run`.

        Blocks stream straight from the source into shared memory —
        nothing is materialized — so a live producer (ring pop loop)
        overlaps with worker decode.  Blocks are published as canonical
        complex128 (value-preserving for every working dtype) and each
        worker applies the engine's own per-block dtype conversion.
        """
        from repro.runtime.workerpool import BlockWorkerPool
        from repro.stream.parallel import channel_consumer

        n_blocks = 0
        n_samples = 0
        live = collector is not None and REGISTRY.enabled
        with TRACER.span(
            "stream.run_parallel", jobs=int(jobs), channels=len(self._paths)
        ):
            pool = BlockWorkerPool(
                channel_consumer,
                self._engine_kwargs,
                [path.zigbee_channel for path in self._paths],
                jobs=jobs,
                telemetry_blocks=1 if live else None,
            )
            try:
                if live:
                    t_start = time.perf_counter()
                for block in blocks:
                    block = np.ascontiguousarray(block, dtype=np.complex128)
                    pool.publish(block)
                    n_blocks += 1
                    n_samples += int(block.size)
                    if live:
                        # Cumulative published-stream-time over wall time:
                        # the producer-side realtime margin.
                        elapsed = time.perf_counter() - t_start
                        if elapsed > 0:
                            _MARGIN.set(
                                (n_samples / self.sample_rate) / elapsed
                            )
                        collector.ingest_shards(pool.drain_telemetry())
                        collector.maybe_tick()
                    elif collector is not None:
                        collector.maybe_tick()
                results = pool.join()
                self._pool_stats = pool.stats()
            finally:
                pool.close()
            if live:
                # join() merged the workers' authoritative end-of-run
                # shards into the registry; the side-queue preview must
                # go or everything a worker counted would double.
                collector.drop_side_shards()
            self._worker_session_stats = []
            for frames, session_stats in results:
                self._pending.extend(frames)
                self._worker_session_stats.append(session_stats)
            released = self._release(final=True)
        self.blocks_in += n_blocks
        self.samples_in += n_samples
        self.frames_out += len(released)
        _BLOCKS.inc(n_blocks)
        _SAMPLES.inc(n_samples)
        if released:
            _FRAMES.inc(len(released))
        return released

    def stats(self):
        return {
            "mode": "demux" if self.demux else "wideband",
            "kernel_mode": self.mode,
            "scan_kernel": self.scan_kernel,
            "decimation": self.decimation,
            "blocks_in": self.blocks_in,
            "samples_in": self.samples_in,
            "frames_out": self.frames_out,
            "sessions": (
                list(self._worker_session_stats)
                if self._worker_session_stats is not None
                else [path.session.stats() for path in self._paths]
            ),
            "pool": self._pool_stats,
        }

    @property
    def pool_stats(self):
        """Worker-pool transport stats of the last parallel run (or None)."""
        return self._pool_stats


def batch_decode_stream(samples, **engine_kwargs):
    """Decode a whole capture in one shot — the batch reference.

    Builds a :class:`StreamEngine` with the given configuration, feeds the
    entire capture as a single block and flushes.  Streaming the same
    capture through the same configuration in *any* block sizes yields a
    bit-identical frame list; the invariance tests and the throughput
    benchmark both compare against this function.
    """
    engine = StreamEngine(**engine_kwargs)
    frames = engine.process_block(np.asarray(samples, dtype=np.complex128))
    frames.extend(engine.finish())
    return frames


__all__ = [
    "StreamEngine",
    "RingBufferSource",
    "batch_decode_stream",
]
