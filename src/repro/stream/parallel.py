"""Per-channel demux worker for parallel :meth:`StreamEngine.run`.

Demux channels are fully independent between the sample stream and the
engine's leak arbitration: each channel's front end, CFO rotation and
session consume the same block sequence without ever reading another
channel's state.  So a worker process can own one channel end-to-end —
it rebuilds a single-channel engine from the parent's constructor
kwargs (identical filter design, decimation scaling and capture
thresholds), drives the :class:`repro.stream.engine._ChannelPath`
directly (bypassing engine-level block/sample counters, which the
parent accounts once per block, not once per channel), and ships the
emitted frames plus session stats back.

The parent then arbitrates leak suppression once over the complete
frame pool — equivalent to the serial incremental release, see
:meth:`StreamEngine._release` — and
:func:`repro.runtime.executor.run_trials` merges each worker's metric
shard in task order, so serial and parallel runs report identical
frames *and* identical ``stream.*`` / ``decoder.*`` metric totals.
"""

from repro.stream.engine import StreamEngine


def channel_task(task):
    """Run one demux channel over every block; module-level for pickling.

    ``task`` is ``(engine_kwargs, zigbee_channel, blocks)``; returns
    ``(frames, session_stats)``.  Frames keep their per-session
    ``latency_products``: the worker pushes the same block sequence the
    serial engine would, so even the block-size-dependent fields match.
    """
    engine_kwargs, zigbee_channel, blocks = task
    engine = StreamEngine(zigbee_channels=[zigbee_channel], **engine_kwargs)
    (path,) = engine._paths
    frames = []
    for block in blocks:
        frames.extend(path.process_block(block))
    frames.extend(path.session.finish())
    return frames, path.session.stats()


__all__ = ["channel_task"]
