"""Per-channel demux consumers for parallel :meth:`StreamEngine.run`.

Demux channels are fully independent between the sample stream and the
engine's leak arbitration: each channel's front end, CFO rotation and
session consume the same block sequence without ever reading another
channel's state.  So a pool worker can own one channel end-to-end — it
rebuilds a single-channel engine from the parent's constructor kwargs
(identical filter design, decimation scaling and capture thresholds),
drives the :class:`repro.stream.engine._ChannelPath` directly (bypassing
engine-level block/sample counters, which the parent accounts once per
block, not once per channel), and ships the emitted frames plus session
stats back when the stream ends.

:func:`channel_consumer` is the ``factory(config, key)`` hook for
:class:`repro.runtime.workerpool.BlockWorkerPool`: the pool spawns the
workers once, publishes each sample block once into shared memory, and
hands every consumer a zero-copy read-only view per block.  The parent
then arbitrates leak suppression once over the complete frame pool —
equivalent to the serial incremental release, see
:meth:`StreamEngine._release` — and merges worker metric shards, so
serial and parallel runs report identical frames *and* identical
``stream.*`` / ``decoder.*`` metric totals.
"""

import time

import numpy as np

from repro.obs.metrics import REGISTRY


class ChannelConsumer:
    """One demux channel driven block-by-block inside a pool worker."""

    def __init__(self, engine_kwargs, zigbee_channel):
        # Shares the engine's health histogram so worker block timings
        # land under the same instrument (``stream.health.*`` is outside
        # the serial==parallel determinism contract — wall-clock values
        # and observation granularity differ by construction).
        from repro.stream.engine import _BLOCK_SECONDS, StreamEngine

        engine = StreamEngine(
            zigbee_channels=[zigbee_channel], **engine_kwargs
        )
        (self._path,) = engine._paths
        #: Blocks arrive from shared memory as canonical complex128; the
        #: same per-block dtype conversion the serial engine applies in
        #: ``process_block`` keeps the products bit-identical.
        self._dtype = engine.working_dtype or np.complex128
        self._block_seconds = _BLOCK_SECONDS
        self._frames = []

    def process(self, block):
        """Consume one published block; the view is not retained."""
        metered = REGISTRY.enabled
        if metered:
            t0 = time.perf_counter()
        block = np.asarray(block, dtype=self._dtype)
        self._frames.extend(self._path.process_block(block))
        if metered:
            self._block_seconds.observe(time.perf_counter() - t0)

    def finish(self):
        """Flush front end and session; returns ``(frames, session_stats)``.

        Frames keep their per-session ``latency_products``: the worker
        pushed the same block sequence the serial engine would, so even
        the block-size-dependent fields match.
        """
        self._frames.extend(self._path.flush_front_end())
        self._frames.extend(self._path.session.finish())
        return self._frames, self._path.session.stats()


def channel_consumer(engine_kwargs, zigbee_channel):
    """Pool factory: build one channel's consumer; module-level for pickling."""
    return ChannelConsumer(engine_kwargs, zigbee_channel)


__all__ = ["ChannelConsumer", "channel_consumer"]
