"""Ambient noise and burst interference state for fleet links.

A noise model answers, per transmission: *how much extra loss is this
link seeing right now, and how many WiFi interferers are active?*  The
answer feeds the communication model — extra loss shifts the link SNR,
the interferer count selects a column of the calibrated delivery table
(or installs a real interference model in sample fidelity).

Burst dynamics reuse the :class:`repro.transport.faults.GilbertElliott`
machinery directly: one two-state chain per node, each advanced lazily
on its own scheduler stream in (per-node nondecreasing) transmission
time order — exactly the contract ``transport`` established for fault
profiles.

Mirrors ``NoiseModel.py`` of the SLP simulator referenced in ROADMAP.md.
"""

from repro.transport.faults import GilbertElliott


class NoiseState:
    """Channel condition for one transmission."""

    __slots__ = ("extra_loss_db", "interferers")

    def __init__(self, extra_loss_db=0.0, interferers=0):
        self.extra_loss_db = extra_loss_db
        self.interferers = interferers


_CLEAN = NoiseState()


class NoiseModel:
    """Base protocol: a perfectly clean, stationary RF environment."""

    kind = "none"

    #: Largest interferer count this model can report; the calibration
    #: grid must cover at least this many columns.
    max_interferers = 0

    def bind(self, scheduler):
        self._scheduler = scheduler

    def state(self, node_id, time_s):
        return _CLEAN


class AmbientNoise(NoiseModel):
    """Stationary ambient floor plus memoryless WiFi activity.

    ``extra_loss_db`` models a flat margin erosion (foliage, enclosure,
    antenna detuning).  ``interference_duty`` is the probability any one
    of ``n_interferers`` nearby WiFi transmitters is mid-burst when the
    frame goes out — each samples independently per transmission
    (memoryless, the packet-level reading of a duty cycle).
    """

    kind = "ambient"

    def __init__(self, extra_loss_db=0.0, interference_duty=0.0, n_interferers=1):
        if not 0.0 <= interference_duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")
        if n_interferers < 0:
            raise ValueError("interferer count must be nonnegative")
        self.extra_loss_db = float(extra_loss_db)
        self.interference_duty = float(interference_duty)
        self.n_interferers = int(n_interferers)
        self.max_interferers = self.n_interferers if interference_duty else 0

    def state(self, node_id, time_s):
        if not self.interference_duty or not self.n_interferers:
            if not self.extra_loss_db:
                return _CLEAN
            return NoiseState(extra_loss_db=self.extra_loss_db)
        rng = self._scheduler.rng("noise", node_id)
        active = 0
        for _ in range(self.n_interferers):
            if rng.random() < self.interference_duty:
                active += 1
        return NoiseState(
            extra_loss_db=self.extra_loss_db, interferers=active
        )


class BurstNoise(AmbientNoise):
    """Gilbert–Elliott burst fading on top of the ambient model.

    Each node's link rides its own two-state chain (good/bad with
    exponential sojourns, ``bad_extra_loss_db`` in the bad state) — the
    exact :class:`repro.transport.faults.GilbertElliott` dynamics, one
    instance per node, advanced on per-node scheduler streams keyed
    ``("noise-burst", node_id)``.
    """

    kind = "burst"

    def __init__(
        self,
        mean_good_s=0.25,
        mean_bad_s=0.08,
        bad_extra_loss_db=6.0,
        extra_loss_db=0.0,
        interference_duty=0.0,
        n_interferers=1,
    ):
        super().__init__(
            extra_loss_db=extra_loss_db,
            interference_duty=interference_duty,
            n_interferers=n_interferers,
        )
        self.mean_good_s = float(mean_good_s)
        self.mean_bad_s = float(mean_bad_s)
        self.bad_extra_loss_db = float(bad_extra_loss_db)
        self._chains = {}

    def bind(self, scheduler):
        super().bind(scheduler)
        self._chains = {}

    def state(self, node_id, time_s):
        base = super().state(node_id, time_s)
        chain = self._chains.get(node_id)
        if chain is None:
            chain = self._chains[node_id] = GilbertElliott(
                mean_good_s=self.mean_good_s,
                mean_bad_s=self.mean_bad_s,
                bad_extra_loss_db=self.bad_extra_loss_db,
            )
        burst = chain.state(
            time_s, self._scheduler.rng("noise-burst", node_id)
        )
        if not burst.extra_loss_db and base is _CLEAN:
            return _CLEAN
        return NoiseState(
            extra_loss_db=base.extra_loss_db + burst.extra_loss_db,
            interferers=base.interferers,
        )


#: Manifest ``kind`` -> constructor.
NOISE_MODELS = {
    "none": NoiseModel,
    "ambient": AmbientNoise,
    "burst": BurstNoise,
}


def make_noise(spec):
    """Build a noise model from ``{"kind": ..., **kwargs}`` (or None)."""
    if spec is None:
        return NoiseModel()
    spec = dict(spec)
    kind = spec.pop("kind", "none")
    try:
        factory = NOISE_MODELS[kind]
    except KeyError:
        valid = ", ".join(sorted(NOISE_MODELS))
        raise ValueError(
            f"unknown noise kind {kind!r}; valid: {valid}"
        ) from None
    return factory(**spec)
