"""repro.sim — discrete-event fleet simulation with a calibrated fast path.

A hand-rolled (simpy-idiom) discrete-event simulator for SymBee sensor
fleets: an :class:`EventScheduler` with deterministic tie-breaking and
per-entity seeded RNG streams, pluggable topology / mobility / noise /
fault models, and a :class:`CommunicationModel` that decides frame fates
either through the real sample-level PHY (``fidelity="sample"``) or a
:class:`DeliveryTable` calibrated from it (``fidelity="packet"``) —
fleet-scale campaigns in seconds instead of hours.

See ``docs/simulation.md`` for the architecture and manifest format.
"""

from repro.sim.campaign import (
    CampaignResult,
    FleetSimulation,
    load_manifest,
    run_campaign,
)
from repro.sim.comm import FIDELITIES, CommunicationModel, DeliveryOutcome, make_comm
from repro.sim.fastpath import (
    CALIBRATION_VERSION,
    CalibrationConfig,
    DeliveryTable,
    default_cache_dir,
    sample_frame_outcomes,
)
from repro.sim.faults import (
    FAULT_MODELS,
    AckBlackoutFaults,
    FaultModel,
    NodeCrashFaults,
    make_faults,
)
from repro.sim.mobility import (
    MOBILITY_MODELS,
    MobilityModel,
    StaticMobility,
    WaypointMobility,
    make_mobility,
)
from repro.sim.noise import (
    NOISE_MODELS,
    AmbientNoise,
    BurstNoise,
    NoiseModel,
    NoiseState,
    make_noise,
)
from repro.sim.scheduler import Event, EventScheduler, stable_key_int
from repro.sim.topology import (
    TOPOLOGIES,
    ClusterTopology,
    GridTopology,
    RandomTopology,
    Topology,
    make_topology,
)

__all__ = [
    "AckBlackoutFaults",
    "AmbientNoise",
    "BurstNoise",
    "CALIBRATION_VERSION",
    "CalibrationConfig",
    "CampaignResult",
    "ClusterTopology",
    "CommunicationModel",
    "DeliveryOutcome",
    "DeliveryTable",
    "Event",
    "EventScheduler",
    "FAULT_MODELS",
    "FIDELITIES",
    "FaultModel",
    "FleetSimulation",
    "GridTopology",
    "MOBILITY_MODELS",
    "MobilityModel",
    "NOISE_MODELS",
    "NodeCrashFaults",
    "NoiseModel",
    "NoiseState",
    "RandomTopology",
    "StaticMobility",
    "TOPOLOGIES",
    "Topology",
    "WaypointMobility",
    "default_cache_dir",
    "load_manifest",
    "make_comm",
    "make_faults",
    "make_mobility",
    "make_noise",
    "make_topology",
    "run_campaign",
    "sample_frame_outcomes",
    "stable_key_int",
]
