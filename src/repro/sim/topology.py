"""Node/gateway placement models for fleet simulations.

A topology decides, once at construction time, where every sensor and
every WiFi gateway sits (metres, gateway-0 centred coordinate frame) and
which gateway each sensor converges on (nearest by euclidean distance).
Randomized layouts draw from a dedicated seeded stream so placement is a
pure function of the topology config — independent of everything the
event loop later does.

The module shapes mirror the ``Topology.py`` of MBradbury's SLP
simulator named in ROADMAP.md: declarative constructors, a
``positions`` map, and registry lookup by manifest ``kind``.
"""

import math

import numpy as np

from repro.runtime import as_seed_sequence


class Topology:
    """Base: explicit positions handed in directly.

    ``positions`` maps ``node_id -> (x, y)``; ``gateways`` is a tuple of
    ``(x, y)`` WiFi sink positions (at least one).
    """

    kind = "explicit"

    def __init__(self, positions, gateways=((0.0, 0.0),)):
        self.positions = {
            int(node_id): (float(x), float(y))
            for node_id, (x, y) in dict(positions).items()
        }
        self.gateways = tuple((float(x), float(y)) for x, y in gateways)
        if not self.positions:
            raise ValueError("topology needs at least one node")
        if not self.gateways:
            raise ValueError("topology needs at least one gateway")
        #: node -> index of its nearest gateway (its convergecast sink).
        self.gateway_of = {
            node_id: min(
                range(len(self.gateways)),
                key=lambda g: math.hypot(
                    pos[0] - self.gateways[g][0],
                    pos[1] - self.gateways[g][1],
                ),
            )
            for node_id, pos in self.positions.items()
        }

    @property
    def node_ids(self):
        return sorted(self.positions)

    def distance_to_gateway(self, node_id, position=None):
        """Distance (>= 1 m floor) from a node position to its sink.

        The 1 m floor matches the path-loss reference distance — a node
        physically on top of its gateway still has a finite link budget.
        """
        gx, gy = self.gateways[self.gateway_of[node_id]]
        x, y = self.positions[node_id] if position is None else position
        return max(1.0, math.hypot(x - gx, y - gy))

    def extent_m(self):
        """Radius of the smallest origin-centred disc holding every node."""
        return max(
            math.hypot(x, y) for x, y in self.positions.values()
        )


class GridTopology(Topology):
    """``n_nodes`` on a square grid around a central gateway.

    Rows fill in reading order at ``spacing_m`` pitch; the grid is
    centred on the origin where gateway 0 sits.  ``gateways > 1`` adds
    extra sinks evenly spaced on a ring at half the grid's extent, the
    multi-gateway convergecast layout.
    """

    kind = "grid"

    def __init__(self, n_nodes, spacing_m=3.0, gateways=1):
        n_nodes = int(n_nodes)
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if spacing_m <= 0:
            raise ValueError("spacing must be positive")
        side = int(math.ceil(math.sqrt(n_nodes)))
        half = (side - 1) / 2.0
        positions = {}
        for node_id in range(n_nodes):
            row, col = divmod(node_id, side)
            positions[node_id] = (
                (col - half) * spacing_m,
                (row - half) * spacing_m,
            )
        super().__init__(
            positions,
            gateways=_gateway_ring(int(gateways), half * spacing_m / 2.0),
        )


class RandomTopology(Topology):
    """``n_nodes`` uniform in a disc of ``radius_m`` around the gateway."""

    kind = "random"

    def __init__(self, n_nodes, radius_m=25.0, gateways=1, seed=0):
        n_nodes = int(n_nodes)
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if radius_m <= 0:
            raise ValueError("radius must be positive")
        rng = np.random.default_rng(as_seed_sequence(seed))
        # Uniform over the disc: sqrt-radial + uniform angle.
        radii = radius_m * np.sqrt(rng.random(n_nodes))
        angles = 2.0 * np.pi * rng.random(n_nodes)
        positions = {
            i: (float(radii[i] * np.cos(angles[i])),
                float(radii[i] * np.sin(angles[i])))
            for i in range(n_nodes)
        }
        super().__init__(
            positions, gateways=_gateway_ring(int(gateways), radius_m / 2.0)
        )


class ClusterTopology(Topology):
    """Clustered deployment: one gateway per cluster of sensors.

    Cluster centres are uniform in a disc of ``spread_m``; each cluster's
    ``nodes_per_cluster`` members scatter Gaussian (``cluster_radius_m``
    sigma) around their centre, and the cluster's gateway sits at the
    centre — the many-buildings / many-rooms deployment where spatial
    reuse between clusters is the point.
    """

    kind = "cluster"

    def __init__(
        self,
        n_clusters=4,
        nodes_per_cluster=8,
        cluster_radius_m=5.0,
        spread_m=60.0,
        seed=0,
    ):
        n_clusters = int(n_clusters)
        nodes_per_cluster = int(nodes_per_cluster)
        if n_clusters < 1 or nodes_per_cluster < 1:
            raise ValueError("need at least one cluster and one node each")
        rng = np.random.default_rng(as_seed_sequence(seed))
        centres = []
        for _ in range(n_clusters):
            r = spread_m * math.sqrt(float(rng.random()))
            a = 2.0 * math.pi * float(rng.random())
            centres.append((r * math.cos(a), r * math.sin(a)))
        positions = {}
        node_id = 0
        for cx, cy in centres:
            offsets = rng.normal(0.0, cluster_radius_m, size=(nodes_per_cluster, 2))
            for k in range(nodes_per_cluster):
                positions[node_id] = (
                    cx + float(offsets[k, 0]),
                    cy + float(offsets[k, 1]),
                )
                node_id += 1
        super().__init__(positions, gateways=tuple(centres))


def _gateway_ring(count, radius_m):
    """Gateway 0 at the origin, extras evenly spaced on a ring."""
    if count < 1:
        raise ValueError("need at least one gateway")
    gateways = [(0.0, 0.0)]
    for k in range(count - 1):
        angle = 2.0 * math.pi * k / max(1, count - 1)
        gateways.append(
            (radius_m * math.cos(angle), radius_m * math.sin(angle))
        )
    return tuple(gateways)


#: Manifest ``kind`` -> constructor; kwargs come straight from the manifest.
TOPOLOGIES = {
    "grid": GridTopology,
    "random": RandomTopology,
    "cluster": ClusterTopology,
}


def make_topology(spec, seed=0):
    """Build a topology from a manifest dict like ``{"kind": "grid", ...}``.

    Randomized kinds take their placement seed from the manifest entry
    (``spec["seed"]``) when present, else from ``seed`` — so a campaign
    seed reshuffles placement unless the manifest pins it.
    """
    spec = dict(spec)
    kind = spec.pop("kind", "grid")
    try:
        factory = TOPOLOGIES[kind]
    except KeyError:
        valid = ", ".join(sorted(TOPOLOGIES))
        raise ValueError(
            f"unknown topology kind {kind!r}; valid: {valid}"
        ) from None
    if kind in ("random", "cluster"):
        spec.setdefault("seed", seed)
    return factory(**spec)
