"""Node mobility: where is a node at simulated time ``t``?

Mobility models are queried by the communication model at every
transmission start, in nondecreasing time order (the event loop
guarantees it), so trajectory state advances lazily per node.  Per-node
randomness comes from dedicated scheduler streams keyed
``("mobility", node_id)`` — one node's wandering never perturbs
another's, and adding nodes does not reshuffle existing trajectories.

Mirrors ``MobilityModel.py`` of the SLP simulator referenced in
ROADMAP.md: a ``bind``-then-``position`` protocol plus a manifest
registry.
"""

import math


class MobilityModel:
    """Base protocol: bind to a simulation, then answer position queries."""

    kind = "static"

    def bind(self, topology, scheduler):
        """Attach to the run (called once before events fire)."""
        self._topology = topology
        self._scheduler = scheduler

    def position(self, node_id, time_s):
        """Node position (x, y) at ``time_s`` (nondecreasing per node)."""
        return self._topology.positions[node_id]


class StaticMobility(MobilityModel):
    """Everyone stays put — the degenerate (and fastest) model."""


class WaypointMobility(MobilityModel):
    """Random waypoint: pick a point in the arena, walk there, pause.

    The classic mobility benchmark: each node independently draws a
    destination uniform in a disc (radius ``area_radius_m``, default the
    topology extent plus one hop), walks at ``speed_m_s``, pauses
    ``pause_s``, repeats.  Gateways never move.
    """

    kind = "waypoint"

    def __init__(self, speed_m_s=1.4, pause_s=0.0, area_radius_m=None):
        if speed_m_s <= 0:
            raise ValueError("speed must be positive")
        if pause_s < 0:
            raise ValueError("pause must be nonnegative")
        self.speed_m_s = float(speed_m_s)
        self.pause_s = float(pause_s)
        self.area_radius_m = (
            float(area_radius_m) if area_radius_m is not None else None
        )
        self._legs = {}

    def bind(self, topology, scheduler):
        super().bind(topology, scheduler)
        if self.area_radius_m is None:
            self.area_radius_m = topology.extent_m() + 10.0
        self._legs = {}

    def _draw_waypoint(self, rng):
        r = self.area_radius_m * math.sqrt(float(rng.random()))
        a = 2.0 * math.pi * float(rng.random())
        return (r * math.cos(a), r * math.sin(a))

    def position(self, node_id, time_s):
        leg = self._legs.get(node_id)
        if leg is None:
            start = self._topology.positions[node_id]
            leg = self._new_leg(node_id, 0.0, start)
        t0, t1, p0, p1 = leg
        while time_s >= t1:
            leg = self._new_leg(node_id, t1, p1)
            t0, t1, p0, p1 = leg
        if p0 == p1:  # pausing
            return p0
        frac = (time_s - t0) / (t1 - t0)
        return (
            p0[0] + frac * (p1[0] - p0[0]),
            p0[1] + frac * (p1[1] - p0[1]),
        )

    def _new_leg(self, node_id, start_time, start_pos):
        """Next trajectory leg: a walk to a fresh waypoint, or a pause."""
        rng = self._scheduler.rng("mobility", node_id)
        last = self._legs.get(node_id)
        walking = last is None or last[2] == last[3] or self.pause_s == 0.0
        if walking:
            target = self._draw_waypoint(rng)
            distance = math.hypot(
                target[0] - start_pos[0], target[1] - start_pos[1]
            )
            duration = max(1e-9, distance / self.speed_m_s)
            leg = (start_time, start_time + duration, start_pos, target)
        else:
            leg = (start_time, start_time + self.pause_s, start_pos, start_pos)
        self._legs[node_id] = leg
        return leg


#: Manifest ``kind`` -> constructor.
MOBILITY_MODELS = {
    "static": StaticMobility,
    "waypoint": WaypointMobility,
}


def make_mobility(spec):
    """Build a mobility model from ``{"kind": ..., **kwargs}`` (or None)."""
    if spec is None:
        return StaticMobility()
    spec = dict(spec)
    kind = spec.pop("kind", "static")
    try:
        factory = MOBILITY_MODELS[kind]
    except KeyError:
        valid = ", ".join(sorted(MOBILITY_MODELS))
        raise ValueError(
            f"unknown mobility kind {kind!r}; valid: {valid}"
        ) from None
    return factory(**spec)
