"""Node and gateway fault models for fleet simulations.

Faults answer two questions the MAC loop asks, both in nondecreasing
time order: *is this sensor alive right now?* (a crashed node generates
no traffic) and *is the MAC feedback path up?* (during an ACK blackout a
sender learns nothing about its frame's fate, so it never retries —
the convergecast reading of ``transport``'s ACK-blackout profile).

Crash/recover dynamics are per-node alternating exponential up/down
sojourns advanced lazily on dedicated scheduler streams keyed
``("faults", node_id)``, the same lazy-chain idiom
:class:`repro.transport.faults.GilbertElliott` uses.

Mirrors ``FaultModel.py`` of the SLP simulator referenced in ROADMAP.md.
"""


class FaultModel:
    """Base protocol: nothing ever fails."""

    kind = "none"

    def bind(self, scheduler):
        self._scheduler = scheduler

    def alive(self, node_id, time_s):
        """Whether the sensor is up at ``time_s`` (per-node monotone)."""
        return True

    def ack_available(self, node_id, time_s):
        """Whether MAC-level delivery feedback works at ``time_s``."""
        return True


class NodeCrashFaults(FaultModel):
    """Random node crash/recover with exponential sojourns.

    Each node runs an independent up/down renewal process: up for
    Exponential(``mtbf_s``), down for Exponential(``mean_downtime_s``).
    State is evaluated lazily at query time, so only nodes that actually
    transmit pay for their chain.
    """

    kind = "crash"

    def __init__(self, mtbf_s=30.0, mean_downtime_s=5.0):
        if mtbf_s <= 0 or mean_downtime_s <= 0:
            raise ValueError("sojourn means must be positive")
        self.mtbf_s = float(mtbf_s)
        self.mean_downtime_s = float(mean_downtime_s)
        self._chains = {}

    def bind(self, scheduler):
        super().bind(scheduler)
        self._chains = {}

    def alive(self, node_id, time_s):
        chain = self._chains.get(node_id)
        if chain is None:
            rng = self._scheduler.rng("faults", node_id)
            chain = [True, float(rng.exponential(self.mtbf_s))]
            self._chains[node_id] = chain
        up, next_flip = chain
        if time_s >= next_flip:
            rng = self._scheduler.rng("faults", node_id)
            while time_s >= next_flip:
                up = not up
                mean = self.mtbf_s if up else self.mean_downtime_s
                next_flip += float(rng.exponential(mean))
            chain[0] = up
            chain[1] = next_flip
        return up


class AckBlackoutFaults(FaultModel):
    """Scripted windows where MAC delivery feedback goes dark.

    Sensors stay up and frames still fly, but inside each
    ``(start_s, end_s)`` window a sender gets no ACK, so a lost frame is
    never retried — retransmission pressure visibly drops while raw
    loss stays constant, the signature the transport PR established.
    """

    kind = "ack-blackout"

    def __init__(self, blackouts=((0.3, 0.9),)):
        self.blackouts = tuple((float(a), float(b)) for a, b in blackouts)
        for a, b in self.blackouts:
            if b <= a:
                raise ValueError("blackout windows must have end > start")

    def ack_available(self, node_id, time_s):
        return not any(a <= time_s < b for a, b in self.blackouts)


#: Manifest ``kind`` -> constructor.
FAULT_MODELS = {
    "none": FaultModel,
    "crash": NodeCrashFaults,
    "ack-blackout": AckBlackoutFaults,
}


def make_faults(spec):
    """Build a fault model from ``{"kind": ..., **kwargs}`` (or None)."""
    if spec is None:
        return FaultModel()
    spec = dict(spec)
    kind = spec.pop("kind", "none")
    try:
        factory = FAULT_MODELS[kind]
    except KeyError:
        valid = ", ".join(sorted(FAULT_MODELS))
        raise ValueError(
            f"unknown fault kind {kind!r}; valid: {valid}"
        ) from None
    return factory(**spec)
