"""Fleet campaigns: many senders, one MAC, a manifest in, a summary out.

A campaign wires every ``repro.sim`` piece together: the scheduler
drives self-rescheduling Poisson arrivals per sensor; a packet-level
CSMA/CA MAC arbitrates per-contention-domain airtime (one domain per
(gateway, ZigBee channel) pair — the spatial-reuse assumption that far
apart cells do not hear each other); the communication model decides
each frame's fate at ``packet`` or ``sample`` fidelity; fault and noise
models perturb everything along the way.

MAC semantics (the packet-level reading of ``zigbee.csma``):

* A sender whose CCA hears an ongoing transmission defers to the
  current busy horizon plus a random slotted backoff.
* CCA is blind to a transmission younger than ``CCA_DURATION_S`` — two
  starts within that window **collide**, killing both.  Collisions are
  resolved retroactively at the *end* event, which is when delivery is
  decided (so a later blind starter can still revoke an in-flight
  frame, exactly as the convergecast simulator does).
* A failed frame retries (fresh CSMA attempt) only while the fault
  model says ACK feedback is available — during an ACK blackout losses
  go unnoticed and unrepaired.

Determinism: everything derives from the manifest seed through
per-entity scheduler streams, and :meth:`CampaignResult.summary`
contains no wall-clock quantities — same seed + same manifest gives a
bit-identical summary dict.
"""

import json

from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.sim.comm import CommunicationModel, make_comm
from repro.sim.faults import make_faults
from repro.sim.mobility import make_mobility
from repro.sim.noise import make_noise
from repro.sim.scheduler import EventScheduler
from repro.sim.topology import make_topology
from repro.zigbee.channels import overlapping_zigbee_channels
from repro.zigbee.csma import CCA_DURATION_S, UNIT_BACKOFF_S

_M_OFFERED = REGISTRY.counter("sim.frames.offered")
_M_DELIVERED = REGISTRY.counter("sim.frames.delivered")
_M_COLLIDED = REGISTRY.counter("sim.frames.collided")
_M_LOST = REGISTRY.counter("sim.frames.lost")
_M_RETRIES = REGISTRY.counter("sim.frames.retries")
_M_DEFERS = REGISTRY.counter("sim.csma.defers")
_M_DOWN = REGISTRY.counter("sim.faults.skipped_down")
_M_LAT = REGISTRY.histogram(
    "sim.latency_ms", edges=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
)

#: Gap between a failed frame's end and its retry attempt (ACK wait).
RETRY_TURNAROUND_S = 0.000864  # macAckWaitDuration-ish at 250 kb/s

#: Backoff exponent window, per 802.15.4 slotted CSMA (2^BE - 1 slots).
MAX_BACKOFF_SLOTS = 8


class _Transmission:
    """One frame on the air in some contention domain."""

    __slots__ = (
        "node_id", "sequence", "attempt", "created_s", "start_s", "end_s",
        "collided",
    )

    def __init__(self, node_id, sequence, attempt, created_s, start_s, end_s):
        self.node_id = node_id
        self.sequence = sequence
        self.attempt = attempt
        self.created_s = created_s
        self.start_s = start_s
        self.end_s = end_s
        self.collided = False


class _Domain:
    """Per-(gateway, channel) contention state."""

    __slots__ = ("busy_until", "current", "airtime_s")

    def __init__(self):
        self.busy_until = 0.0
        self.current = None
        self.airtime_s = 0.0


class CampaignResult:
    """Aggregated campaign outcome with a deterministic summary."""

    def __init__(self, manifest, n_nodes, n_domains, duration_s, fidelity):
        self.manifest = manifest
        self.n_nodes = n_nodes
        self.n_domains = n_domains
        self.duration_s = duration_s
        self.fidelity = fidelity
        self.offered = 0
        self.delivered = 0
        self.collided = 0
        self.lost = 0
        self.retries = 0
        self.defers = 0
        self.skipped_down = 0
        self.airtime_s = 0.0
        self.latencies_s = []
        self.events_processed = 0
        #: Configured interference (from the manifest's noise model) and
        #: the observed interferer activity accumulated per delivery
        #: attempt — both deterministic, so summary() may carry them.
        self.interference_duty = 0.0
        self.n_interferers = 0
        self.interferer_samples = 0
        self.interferer_total = 0
        #: Wall-clock seconds; informational only, never in summary().
        self.elapsed_s = None

    @property
    def delivery_ratio(self):
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def utilization(self):
        denom = self.duration_s * self.n_domains
        return self.airtime_s / denom if denom > 0 else 0.0

    def _latency_stats(self):
        if not self.latencies_s:
            return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0}
        ordered = sorted(self.latencies_s)
        n = len(ordered)
        return {
            "mean_ms": round(1e3 * sum(ordered) / n, 6),
            "p50_ms": round(1e3 * ordered[n // 2], 6),
            "p95_ms": round(1e3 * ordered[min(n - 1, (19 * n) // 20)], 6),
        }

    def summary(self):
        """Deterministic (seed+manifest → bit-identical) summary dict."""
        return {
            "name": self.manifest.get("name", "campaign"),
            "seed": self.manifest.get("seed", 0),
            "fidelity": self.fidelity,
            "n_nodes": self.n_nodes,
            "n_domains": self.n_domains,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "delivered": self.delivered,
            "collided": self.collided,
            "lost": self.lost,
            "retries": self.retries,
            "csma_defers": self.defers,
            "skipped_down": self.skipped_down,
            "delivery_ratio": round(self.delivery_ratio, 6),
            "utilization": round(self.utilization, 6),
            "latency": self._latency_stats(),
            "interference": {
                "duty": round(self.interference_duty, 6),
                "n_interferers": self.n_interferers,
                "mean_active": round(
                    self.interferer_total / self.interferer_samples, 6
                )
                if self.interferer_samples
                else 0.0,
            },
            "events_processed": self.events_processed,
        }

    def summary_json(self):
        return json.dumps(self.summary(), sort_keys=True, indent=2)


class FleetSimulation:
    """A whole sensor fleet reporting to gateways over SymBee links.

    Built from a manifest dict (see :func:`load_manifest`); call
    :meth:`run` once.  Components may be overridden by keyword for
    tests (notably ``table`` to inject a synthetic delivery table).
    """

    def __init__(self, manifest, table=None, cache_dir=None, jobs=None):
        self.manifest = dict(manifest)
        m = self.manifest
        self.seed = int(m.get("seed", 0))
        self.duration_s = float(m.get("duration_s", 5.0))
        self.fidelity = str(m.get("fidelity", "packet"))
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        traffic = dict(m.get("traffic") or {})
        self.interval_s = float(traffic.get("interval_s", 0.5))
        self.max_retries = int(traffic.get("max_retries", 1))
        if self.interval_s <= 0:
            raise ValueError("traffic interval_s must be positive")

        self.scheduler = EventScheduler(seed=self.seed)
        self.topology = make_topology(
            m.get("topology") or {"kind": "grid", "n_nodes": 9},
            seed=self.seed,
        )
        self.mobility = make_mobility(m.get("mobility"))
        self.noise = make_noise(m.get("noise"))
        self.faults = make_faults(m.get("faults"))
        comm_spec = m.get("comm")
        self.comm = (
            comm_spec
            if isinstance(comm_spec, CommunicationModel)
            else make_comm(comm_spec)
        )

        self.mobility.bind(self.topology, self.scheduler)
        self.noise.bind(self.scheduler)
        self.faults.bind(self.scheduler)
        self.comm.bind(
            self.topology,
            self.mobility,
            self.noise,
            self.scheduler,
            fidelity=self.fidelity,
            table=table,
            cache_dir=cache_dir,
            jobs=jobs,
        )

        channels = overlapping_zigbee_channels(
            self.comm._cal_config.wifi_channel
        )
        self._channel_of = {
            node_id: channels[node_id % len(channels)]
            for node_id in self.topology.node_ids
        }
        self._domains = {}
        for node_id in self.topology.node_ids:
            key = (
                self.topology.gateway_of[node_id],
                self._channel_of[node_id],
            )
            self._domains.setdefault(key, _Domain())
        self._airtime_s = self.comm.frame_airtime_s()
        self.result = CampaignResult(
            self.manifest,
            n_nodes=len(self.topology.node_ids),
            n_domains=len(self._domains),
            duration_s=self.duration_s,
            fidelity=self.fidelity,
        )
        self.result.interference_duty = float(
            getattr(self.noise, "interference_duty", 0.0)
        )
        self.result.n_interferers = int(
            getattr(self.noise, "max_interferers", 0)
        )
        self._sequences = {}

    # -- event handlers -----------------------------------------------------

    def _domain_of(self, node_id):
        return self._domains[
            (self.topology.gateway_of[node_id], self._channel_of[node_id])
        ]

    def _next_arrival(self, node_id, now_s):
        gap = float(
            self.scheduler.rng("traffic", node_id).exponential(
                self.interval_s
            )
        )
        at = now_s + max(gap, 1e-9)
        if at < self.duration_s:
            self.scheduler.at(at, self._on_arrival, node_id)

    def _on_arrival(self, node_id):
        now = self.scheduler.now
        self._next_arrival(node_id, now)
        if not self.faults.alive(node_id, now):
            self.result.skipped_down += 1
            _M_DOWN.inc()
            return
        sequence = self._sequences.get(node_id, 0)
        self._sequences[node_id] = sequence + 1
        self.result.offered += 1
        _M_OFFERED.inc()
        self._attempt(node_id, sequence, 0, now)

    def _attempt(self, node_id, sequence, attempt, created_s):
        now = self.scheduler.now
        domain = self._domain_of(node_id)
        current = domain.current
        if now < domain.busy_until:
            if current is not None and now < current.start_s + CCA_DURATION_S:
                # CCA sampled before the other transmitter's energy
                # ramped: both frames are on the air and both die.
                current.collided = True
                tx = self._start_transmission(
                    domain, node_id, sequence, attempt, created_s, now
                )
                tx.collided = True
                return
            # Heard the channel busy: defer past the horizon plus a
            # random slotted backoff.
            self.result.defers += 1
            _M_DEFERS.inc()
            slots = int(
                self.scheduler.rng("mac", node_id).integers(
                    0, MAX_BACKOFF_SLOTS
                )
            )
            retry_at = (
                domain.busy_until
                + CCA_DURATION_S
                + slots * UNIT_BACKOFF_S
            )
            self.scheduler.at(
                retry_at, self._attempt, node_id, sequence, attempt, created_s
            )
            return
        self._start_transmission(
            domain, node_id, sequence, attempt, created_s, now
        )

    def _start_transmission(
        self, domain, node_id, sequence, attempt, created_s, now
    ):
        tx = _Transmission(
            node_id, sequence, attempt, created_s, now, now + self._airtime_s
        )
        domain.current = tx
        domain.busy_until = max(domain.busy_until, tx.end_s)
        domain.airtime_s += self._airtime_s
        self.result.airtime_s += self._airtime_s
        self.scheduler.at(tx.end_s, self._on_end, tx)
        return tx

    def _on_end(self, tx):
        now = self.scheduler.now
        delivered = False
        if not tx.collided:
            outcome = self.comm.deliver(
                tx.node_id, tx.sequence, tx.attempt, tx.start_s
            )
            delivered = outcome.delivered
            self.result.interferer_samples += 1
            self.result.interferer_total += int(outcome.interferers)
        else:
            self.result.collided += 1
            _M_COLLIDED.inc()
        if delivered:
            self.result.delivered += 1
            _M_DELIVERED.inc()
            latency = now - tx.created_s
            self.result.latencies_s.append(latency)
            _M_LAT.observe(latency * 1e3)
            return
        if tx.attempt < self.max_retries and self.faults.ack_available(
            tx.node_id, now
        ):
            self.result.retries += 1
            _M_RETRIES.inc()
            slots = int(
                self.scheduler.rng("mac", tx.node_id).integers(
                    0, MAX_BACKOFF_SLOTS
                )
            )
            retry_at = now + RETRY_TURNAROUND_S + slots * UNIT_BACKOFF_S
            self.scheduler.at(
                retry_at,
                self._attempt,
                tx.node_id,
                tx.sequence,
                tx.attempt + 1,
                tx.created_s,
            )
            return
        self.result.lost += 1
        _M_LOST.inc()

    # -- driver -------------------------------------------------------------

    def run(self):
        """Execute the campaign; returns the :class:`CampaignResult`."""
        import time

        started = time.perf_counter()
        with TRACER.span(
            "sim.campaign",
            fidelity=self.fidelity,
            n_nodes=len(self.topology.node_ids),
        ):
            for node_id in self.topology.node_ids:
                self._next_arrival(node_id, 0.0)
            # Drain fully: retries scheduled near the horizon may land
            # past duration_s; arrivals stop there, so the queue empties.
            self.scheduler.run()
        self.result.events_processed = self.scheduler.events_processed
        self.result.elapsed_s = time.perf_counter() - started
        return self.result


def load_manifest(path):
    """Read a scenario manifest (JSON) with a path-prefixed error."""
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as error:
        raise ValueError(
            f"{path}: {error.strerror or error}"
        ) from None
    except ValueError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(manifest, dict):
        raise ValueError(f"{path}: manifest must be a JSON object")
    return manifest


def run_campaign(manifest, table=None, cache_dir=None, jobs=None):
    """Build and run a fleet campaign in one call."""
    simulation = FleetSimulation(
        manifest, table=table, cache_dir=cache_dir, jobs=jobs
    )
    return simulation.run()
