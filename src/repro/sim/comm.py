"""Link budget and frame delivery: the glue between fleet and PHY.

The communication model turns *where a node is* (topology + mobility)
and *what the channel is doing* (noise model) into a link SNR via the
scenario's log-distance budget, then decides each frame's fate at one of
two fidelities:

``packet``
    One lookup in the calibrated :class:`~repro.sim.fastpath.DeliveryTable`
    plus one uniform draw — microseconds per frame, suitable for
    fleet-scale campaigns.

``sample``
    The real sample-level PHY: a :class:`~repro.core.link.SymBeeLink`
    pinned at the computed SNR with the same interference construction
    the calibration used, seeded per (node, sequence, attempt) so
    outcomes are independent of event-processing order.  Milliseconds
    per frame — the ground truth the packet path is validated against.

Mirrors ``CommunicationModel.py`` of the SLP simulator referenced in
ROADMAP.md.

The hot path deliberately uses ``math`` scalars (not numpy) for the
budget arithmetic: at fleet scale the budget runs a few hundred thousand
times per campaign.
"""

import math

import numpy as np

from repro.channel.path_loss import FREE_SPACE_REFERENCE_LOSS_DB
from repro.channel.scenarios import get_scenario
from repro.sim.fastpath import (
    CalibrationConfig,
    DeliveryTable,
    _one_frame,
    make_calibration_link,
)

FIDELITIES = ("packet", "sample")


class DeliveryOutcome:
    """What happened to one frame attempt."""

    __slots__ = ("delivered", "snr_db", "interferers", "probability")

    def __init__(self, delivered, snr_db, interferers, probability=None):
        self.delivered = delivered
        self.snr_db = snr_db
        self.interferers = interferers
        self.probability = probability


class CommunicationModel:
    """Scenario link budget + per-frame delivery at either fidelity.

    ``snr_margin_db`` positions the fleet on the delivery curve: it is
    the link SNR a node would see at the topology's reference distance
    of 1 m before shadowing and noise — i.e. transmit power is chosen as
    ``noise_floor + reference_loss + snr_margin_db``.  Campaigns tune it
    (rather than raw dBm) so the same manifest stays meaningful across
    scenarios with different exponents.

    ``calibration`` holds keyword overrides for the
    :class:`CalibrationConfig` distilled at bind time (grid, trial
    count, interferer construction); the FEC scheme, payload size and
    interferer-column count are always derived from this model and the
    bound noise model so the table provably covers what the campaign
    will ask of it.
    """

    def __init__(
        self,
        scenario="office",
        snr_margin_db=58.0,
        fec="none",
        data_bits=16,
        shadowing=True,
        calibration=None,
    ):
        self.scenario = (
            get_scenario(scenario) if isinstance(scenario, str) else scenario
        )
        self.snr_margin_db = float(snr_margin_db)
        self.fec = str(fec)
        self.data_bits = int(data_bits)
        self.shadowing = bool(shadowing)
        self.calibration_overrides = dict(calibration or {})
        self.fidelity = "packet"
        self.table = None
        self._cal_config = None
        # Budget constants (scenario-derived, bind-independent).
        self._ten_n = 10.0 * self.scenario.path_loss_exponent
        self._fixed_loss_db = (
            FREE_SPACE_REFERENCE_LOSS_DB + self.scenario.wall_loss_db
        )
        self._shadow_sigma = (
            self.scenario.shadowing_sigma_db if self.shadowing else 0.0
        )

    # -- setup --------------------------------------------------------------

    def calibration_config(self, max_interferers=0):
        """The table config this model needs (noise decides the columns)."""
        overrides = dict(self.calibration_overrides)
        overrides["fec_schemes"] = (self.fec,)
        overrides["data_bits"] = self.data_bits
        overrides["max_interferers"] = max(
            int(max_interferers), int(overrides.get("max_interferers", 0))
        )
        return CalibrationConfig(**overrides)

    def bind(
        self,
        topology,
        mobility,
        noise,
        scheduler,
        fidelity="packet",
        table=None,
        cache_dir=None,
        jobs=None,
    ):
        """Attach to a run; in packet fidelity, obtain the delivery table.

        ``table`` injects a prebuilt :class:`DeliveryTable` (tests use
        synthetic ones to skip calibration); otherwise the disk cache is
        consulted and a calibration Monte-Carlo runs on a miss.
        """
        if fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; valid: "
                f"{', '.join(FIDELITIES)}"
            )
        self._topology = topology
        self._mobility = mobility
        self._noise = noise
        self._scheduler = scheduler
        self.fidelity = fidelity
        self._cal_config = (
            table.config
            if table is not None
            else self.calibration_config(noise.max_interferers)
        )
        from repro.dsp.signal_ops import watts_to_dbm
        from repro.wifi.front_end import WifiFrontEnd

        front = WifiFrontEnd(channel=self._cal_config.wifi_channel)
        self.noise_floor_dbm = float(watts_to_dbm(front.noise_power_watts))
        self.tx_power_dbm = (
            self.noise_floor_dbm
            + FREE_SPACE_REFERENCE_LOSS_DB
            + self.snr_margin_db
        )
        if fidelity == "packet":
            self.table = (
                table
                if table is not None
                else DeliveryTable.load_or_calibrate(
                    self._cal_config, cache_dir=cache_dir, jobs=jobs
                )
            )
        else:
            self.table = table

    # -- link budget --------------------------------------------------------

    def link_snr(self, node_id, time_s):
        """(snr_db, interferers) for a transmission starting now."""
        position = self._mobility.position(node_id, time_s)
        distance = self._topology.distance_to_gateway(node_id, position)
        loss_db = self._fixed_loss_db + self._ten_n * math.log10(distance)
        state = self._noise.state(node_id, time_s)
        snr_db = (
            self.tx_power_dbm
            - loss_db
            - state.extra_loss_db
            - self.noise_floor_dbm
        )
        if self._shadow_sigma:
            snr_db -= self._shadow_sigma * float(
                self._scheduler.rng("shadow", node_id).standard_normal()
            )
        return snr_db, state.interferers

    # -- delivery -----------------------------------------------------------

    def deliver(self, node_id, sequence, attempt, time_s):
        """Decide one frame attempt's fate at the bound fidelity."""
        snr_db, interferers = self.link_snr(node_id, time_s)
        if self.fidelity == "packet":
            p = self.table.probability(snr_db, interferers, self.fec)
            delivered = (
                float(self._scheduler.rng("deliver", node_id).random()) < p
            )
            return DeliveryOutcome(delivered, snr_db, interferers, p)
        rng = np.random.default_rng(
            self._scheduler.seed_for("frame", node_id, sequence, attempt)
        )
        link = make_calibration_link(snr_db, interferers, self._cal_config)
        delivered = _one_frame(
            link, self.fec, self.data_bits, sequence, rng
        )
        return DeliveryOutcome(delivered, snr_db, interferers)

    # -- timing -------------------------------------------------------------

    def frame_airtime_s(self):
        """On-air duration of one frame (same layout the convergecast
        network uses: FEC-coded payload + frame overhead + MAC header,
        through the ZigBee PPDU timing)."""
        from repro.core.frame import frame_overhead_bits
        from repro.network.simulator import MAC_OVERHEAD_BYTES
        from repro.sim.fastpath import _fec_encode
        from repro.zigbee.frame import ppdu_duration_seconds

        coded_bits = len(_fec_encode([0] * self.data_bits, self.fec))
        frame_bits = coded_bits + frame_overhead_bits()
        payload_bytes = (frame_bits + 7) // 8
        return ppdu_duration_seconds(payload_bytes + MAC_OVERHEAD_BYTES)


def make_comm(spec):
    """Build a communication model from manifest kwargs (or None)."""
    if spec is None:
        return CommunicationModel()
    return CommunicationModel(**dict(spec))
