"""Deterministic discrete-event core for fleet-scale simulation.

:class:`EventScheduler` is a hand-rolled simpy-idiom event loop (no
dependency, like the rest of the repo): a time-ordered heap of callback
events with **deterministic tie-breaking** — events at the same
simulated time fire in scheduling order, so a run's event sequence is a
pure function of the seed and the model, never of hash order or float
rounding luck.

Randomness follows the repo's runtime contract
(:mod:`repro.runtime.seeding`): every entity gets its *own* seeded
stream derived from the scheduler root by a stable key, so adding a node
or reordering model construction cannot shift any other entity's draws.
String key parts hash through SHA-256 (never ``hash()``, which is
per-process salted) to stable 64-bit spawn-key integers.
"""

import hashlib
import heapq
import itertools

import numpy as np

from repro.runtime import as_seed_sequence


def stable_key_int(part):
    """A stable nonnegative integer for one RNG-stream key part.

    Integers pass through; strings map via SHA-256 so the value is
    identical across processes, platforms and Python versions.
    """
    if isinstance(part, (int, np.integer)):
        value = int(part)
        if value < 0:
            raise ValueError("key integers must be nonnegative")
        return value
    if isinstance(part, str):
        digest = hashlib.sha256(part.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
    raise TypeError(f"RNG key parts must be int or str, got {type(part)!r}")


class Event:
    """One scheduled callback; orderable by (time, sequence)."""

    __slots__ = ("time_s", "seq", "fn", "args", "cancelled")

    def __init__(self, time_s, seq, fn, args):
        self.time_s = time_s
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other):
        if self.time_s != other.time_s:
            return self.time_s < other.time_s
        return self.seq < other.seq

    def cancel(self):
        """Mark the event dead; the loop skips it without firing."""
        self.cancelled = True


class EventScheduler:
    """Time-ordered event loop with per-entity seeded RNG streams.

    Tie-breaking contract: events are ordered by ``(time_s, seq)`` where
    ``seq`` is a monotone scheduling counter — two events at the same
    instant fire in the order they were scheduled.  Because model code
    only schedules from a deterministic position in the event sequence,
    the whole execution is reproducible bit-for-bit from the seed.
    """

    def __init__(self, seed=0, start_s=0.0):
        self.now = float(start_s)
        self._heap = []
        self._counter = itertools.count()
        self._root = as_seed_sequence(seed)
        self._streams = {}
        #: Events fired so far (skipped cancellations excluded).
        self.events_processed = 0

    # -- randomness ---------------------------------------------------------

    @property
    def root_seed(self):
        """The root ``SeedSequence`` every stream derives from."""
        return self._root

    def seed_for(self, *key):
        """An order-independent ``SeedSequence`` for a one-shot draw.

        Derived purely from the root entropy and the key, so the same
        ``(node, sequence, attempt)`` identity yields the same stream no
        matter when — or in which worker — it is consumed.  This is the
        same convention :class:`repro.network.ConvergecastNetwork` uses
        for PHY trial seeds.
        """
        spawn = tuple(stable_key_int(part) for part in key)
        return np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=self._root.spawn_key + spawn,
        )

    def rng(self, *key):
        """The persistent ``numpy`` generator for one entity stream.

        Streams are cached: repeated calls with the same key return the
        *same* generator, advancing as the entity consumes randomness.
        Distinct keys give statistically independent streams.
        """
        spawn = tuple(stable_key_int(part) for part in key)
        try:
            return self._streams[spawn]
        except KeyError:
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self._root.entropy,
                    spawn_key=self._root.spawn_key + spawn,
                )
            )
            self._streams[spawn] = rng
            return rng

    # -- scheduling ---------------------------------------------------------

    def at(self, time_s, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time_s``."""
        time_s = float(time_s)
        if time_s < self.now:
            raise ValueError(
                f"cannot schedule at {time_s} before now={self.now}"
            )
        event = Event(time_s, next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_s, fn, *args):
        """Schedule ``fn(*args)`` ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise ValueError("delay must be nonnegative")
        return self.at(self.now + float(delay_s), fn, *args)

    def peek_time(self):
        """Time of the next live event, or ``None`` when drained."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time_s if heap else None

    def __len__(self):
        return sum(1 for event in self._heap if not event.cancelled)

    # -- execution ----------------------------------------------------------

    def run(self, until=None, max_events=None):
        """Fire events in order; returns the number fired.

        ``until`` stops the clock *exclusive*: an event at exactly
        ``until`` does not fire (arrivals at the horizon belong to the
        next epoch, matching the arrival-generation convention of the
        network layer).  ``max_events`` bounds runaway models.
        """
        fired = 0
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time_s >= until:
                break
            if max_events is not None and fired >= max_events:
                break
            heapq.heappop(heap)
            self.now = event.time_s
            event.fn(*event.args)
            fired += 1
            self.events_processed += 1
        if until is not None and self.now < until:
            self.now = float(until)
        return fired
