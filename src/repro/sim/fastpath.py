"""Calibrated packet-level fast path: frame delivery without waveforms.

The fleet simulator's packet fidelity replaces the sample-level PHY
(modulate → channel → capture → decode, ~8 ms/frame) with one table
lookup + one uniform draw (~1 µs/frame): a **frame-delivery probability
table** over (link SNR × active interferer count × FEC scheme), distilled
from the *actual* sample-level PHY by Monte-Carlo through the PR-1
runtime and cross-validated against it in tests within binomial
confidence bounds.

The table caches on disk keyed by a SHA-256 hash of its full calibration
config (grid, trial count, per-point channel construction parameters and
a schema/calibration version), so any config change invalidates the
cache file name itself — stale tables are unreachable, not merely
detected.  Corrupt or partial cache files are recovered by
recalibration, reported with a one-line path-prefixed message in the
PR-3 ``obs summary`` error style.

Delivery semantics (the quantity the table stores): a frame is
*delivered* when the preamble was captured, the full frame decoded, and
the FEC-corrected data region matches the transmitted payload exactly —
the same "would the application see these bits?" criterion the
transport layer uses, applied per frame.
"""

import json
import logging
import math
import os
import tempfile
from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import REGISTRY

logger = logging.getLogger("repro.sim.fastpath")

#: Bump when delivery semantics / trial construction change: old cache
#: files become unreachable because the hash covers this too.
CALIBRATION_VERSION = 1

#: Cache schema marker inside the JSON document.
CACHE_SCHEMA = 1

_M_CACHE_HITS = REGISTRY.counter("sim.calibration.cache_hits")
_M_CACHE_MISSES = REGISTRY.counter("sim.calibration.cache_misses")
_M_CAL_FRAMES = REGISTRY.counter("sim.calibration.frames")

#: FEC schemes the calibration understands (transport's link-layer menu).
FEC_SCHEMES = ("none", "hamming", "conv")


def default_cache_dir():
    """Default on-disk cache location (override with ``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return os.path.join(root, "sim")
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "sim"
    )


@dataclass(frozen=True)
class CalibrationConfig:
    """Everything that determines the table's contents.

    ``snr_grid_db`` are the operating points sampled; lookups
    interpolate linearly between them and clamp outside.  Interferer
    columns 0..``max_interferers`` model concurrently active WiFi
    transmitters: column *k* calibrates against a
    :class:`~repro.channel.interference.WifiInterferenceModel` whose
    burst duty is the union of ``k`` independent ``interferer_duty``
    transmitters at ``interferer_sir_db``.  ``seed`` roots the
    calibration Monte-Carlo only — campaign seeds never touch the
    table, so one cached table serves every campaign.
    """

    snr_grid_db: tuple = (-2.0, 0.0, 2.0, 4.0, 6.0, 8.0)
    max_interferers: int = 1
    interferer_duty: float = 0.35
    interferer_sir_db: float = 3.0
    fec_schemes: tuple = ("none",)
    frames_per_point: int = 64
    data_bits: int = 16
    seed: int = 0x5EEDCA1
    zigbee_channel: int = 13
    wifi_channel: int = 1

    def __post_init__(self):
        object.__setattr__(
            self, "snr_grid_db", tuple(float(s) for s in self.snr_grid_db)
        )
        object.__setattr__(
            self, "fec_schemes", tuple(self.fec_schemes)
        )
        if len(self.snr_grid_db) < 2:
            raise ValueError("need at least two SNR grid points")
        if any(
            b <= a for a, b in zip(self.snr_grid_db, self.snr_grid_db[1:])
        ):
            raise ValueError("SNR grid must be strictly increasing")
        if self.max_interferers < 0:
            raise ValueError("max_interferers must be nonnegative")
        if self.frames_per_point < 1:
            raise ValueError("frames_per_point must be positive")
        for fec in self.fec_schemes:
            if fec not in FEC_SCHEMES:
                raise ValueError(
                    f"unknown FEC scheme {fec!r}; valid: "
                    f"{', '.join(FEC_SCHEMES)}"
                )
        if self.data_bits % 4:
            raise ValueError("data_bits must be a multiple of 4 (hamming)")

    def to_dict(self):
        """Canonical JSON-safe form (hashed and stored in the cache)."""
        return {
            "calibration_version": CALIBRATION_VERSION,
            "snr_grid_db": list(self.snr_grid_db),
            "max_interferers": self.max_interferers,
            "interferer_duty": self.interferer_duty,
            "interferer_sir_db": self.interferer_sir_db,
            "fec_schemes": list(self.fec_schemes),
            "frames_per_point": self.frames_per_point,
            "data_bits": self.data_bits,
            "seed": self.seed,
            "zigbee_channel": self.zigbee_channel,
            "wifi_channel": self.wifi_channel,
        }

    def config_hash(self):
        """Stable hex digest naming the cache file for this config."""
        import hashlib

        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def cache_path(self, cache_dir=None):
        directory = cache_dir if cache_dir is not None else default_cache_dir()
        return os.path.join(
            str(directory), f"delivery-{self.config_hash()}.json"
        )

    def points(self):
        """Every (snr_db, interferers, fec) grid point, in stable order."""
        return [
            (snr, k, fec)
            for fec in self.fec_schemes
            for k in range(self.max_interferers + 1)
            for snr in self.snr_grid_db
        ]


def interference_model_for(count, duty, sir_db):
    """The interference model standing in for ``count`` active WiFi TXs.

    ``count`` independent transmitters at per-TX burst duty ``duty``
    union into channel-busy probability ``1 - (1-duty)^count``; bursts
    arrive at ``sir_db`` relative to the SymBee signal (the calibration
    pins SNR, so SIR-mode power tracks it coherently).  Returns ``None``
    for a clean channel.
    """
    if count <= 0 or duty <= 0.0:
        return None
    from repro.channel.interference import WifiInterferenceModel

    aggregate = 1.0 - (1.0 - float(duty)) ** int(count)
    return WifiInterferenceModel(
        duty_cycle=min(aggregate, 0.95),
        mean_sir_db=float(sir_db),
        sir_sigma_db=0.0,
    )


def _fec_encode(payload_bits, fec):
    if fec == "none":
        return list(payload_bits)
    if fec == "hamming":
        from repro.core.coding import hamming74_encode

        return [int(b) for b in hamming74_encode(payload_bits)]
    from repro.core.convolutional import conv_encode

    return [int(b) for b in conv_encode(payload_bits)]


def _fec_decode(coded_bits, fec, n_bits):
    if fec == "none":
        return list(coded_bits)
    if fec == "hamming":
        from repro.core.coding import hamming74_decode

        return [int(b) for b in hamming74_decode(coded_bits)]
    from repro.core.convolutional import viterbi_decode

    return [int(b) for b in viterbi_decode(coded_bits, n_bits=n_bits)]


def make_calibration_link(snr_db, interferers, config):
    """A :class:`SymBeeLink` pinned at ``snr_db`` with ``interferers``.

    Uses the repo's link-at-SNR convention (transmit power = receiver
    noise floor + SNR, no fading channel) so the table's SNR axis is the
    same quantity the fleet's link-budget computation produces.
    """
    from repro.core.link import SymBeeLink
    from repro.dsp.signal_ops import watts_to_dbm
    from repro.wifi.front_end import WifiFrontEnd

    front = WifiFrontEnd(channel=config.wifi_channel)
    noise_floor_dbm = float(watts_to_dbm(front.noise_power_watts))
    return SymBeeLink(
        zigbee_channel=config.zigbee_channel,
        wifi_channel=config.wifi_channel,
        tx_power_dbm=noise_floor_dbm + float(snr_db),
        interference=interference_model_for(
            interferers, config.interferer_duty, config.interferer_sir_db
        ),
    )


#: Data region offset inside a SymBee frame's bit layout (after the
#: 24-bit header, before the 16-bit outer CRC) — see ``core/frame.py``.
_DATA_START = 24


def sample_frame_outcomes(snr_db, interferers, fec, config, seed, n_frames):
    """Ground truth: ``n_frames`` through the sample-level PHY.

    Returns the number delivered.  Per-frame randomness derives from
    ``seed`` by frame index (the runtime's trial-seeding contract), so
    outcomes are independent of chunking across workers.
    """
    from repro.runtime import as_seed_sequence

    link = make_calibration_link(snr_db, interferers, config)
    root = as_seed_sequence(seed)
    delivered = 0
    for index in range(int(n_frames)):
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=root.entropy, spawn_key=root.spawn_key + (index,)
            )
        )
        if _one_frame(link, fec, config.data_bits, index, rng):
            delivered += 1
    return delivered


def _one_frame(link, fec, data_bits, sequence, rng):
    """One sample-level frame; True when the payload survives FEC."""
    from repro.core.frame import build_frame_bits

    payload = [int(b) for b in rng.integers(0, 2, data_bits)]
    coded = _fec_encode(payload, fec)
    frame_bits = build_frame_bits(coded, sequence=sequence & 0xFF)
    result = link.send_bits(frame_bits, rng, mac_sequence=sequence & 0xFF)
    if not result.preamble_captured:
        return False
    decoded = result.decoded_bits
    if len(decoded) < len(frame_bits):
        return False
    region = list(decoded[_DATA_START : _DATA_START + len(coded)])
    try:
        recovered = _fec_decode(region, fec, n_bits=data_bits)
    except ValueError:
        return False
    return recovered[:data_bits] == payload


def _calibration_trial(task):
    """One grid point's Monte-Carlo (module-level so it pickles)."""
    snr_db, interferers, fec, config, seed = task
    delivered = sample_frame_outcomes(
        snr_db, interferers, fec, config, seed, config.frames_per_point
    )
    return delivered


class DeliveryTable:
    """P(frame delivered | SNR, interferers, FEC), with interpolation.

    ``cells`` maps ``(snr_db, interferers, fec) -> (delivered, trials)``
    over the calibration grid; :meth:`probability` interpolates linearly
    along the SNR axis and clamps both axes at their edges (an SNR past
    the grid is as good/bad as the edge; more interferers than
    calibrated saturate at the worst column).
    """

    def __init__(self, config, cells):
        self.config = config
        self.cells = dict(cells)
        missing = [p for p in config.points() if p not in self.cells]
        if missing:
            raise ValueError(
                f"delivery table is missing {len(missing)} grid point(s), "
                f"first {missing[0]}"
            )
        self._grid = config.snr_grid_db
        # Dense per-(fec, k) probability rows for fast lookup.
        self._rows = {}
        for fec in config.fec_schemes:
            for k in range(config.max_interferers + 1):
                self._rows[(fec, k)] = [
                    self.cells[(snr, k, fec)][0]
                    / max(1, self.cells[(snr, k, fec)][1])
                    for snr in self._grid
                ]

    # -- lookup -------------------------------------------------------------

    def probability(self, snr_db, interferers=0, fec=None):
        """Interpolated delivery probability at an operating point."""
        if fec is None:
            fec = self.config.fec_schemes[0]
        k = min(max(0, int(interferers)), self.config.max_interferers)
        try:
            row = self._rows[(fec, k)]
        except KeyError:
            raise ValueError(
                f"FEC {fec!r} not calibrated; table covers "
                f"{', '.join(self.config.fec_schemes)}"
            ) from None
        grid = self._grid
        if snr_db <= grid[0]:
            return row[0]
        if snr_db >= grid[-1]:
            return row[-1]
        hi = bisect_left(grid, snr_db)
        lo = hi - 1
        frac = (snr_db - grid[lo]) / (grid[hi] - grid[lo])
        return row[lo] + frac * (row[hi] - row[lo])

    def binomial_bound(self, snr_db, interferers=0, fec=None, z=3.0):
        """Half-width of the z-sigma binomial band around a table cell.

        Evaluated at the nearest grid SNR (the cell actually measured).
        Tests assert |observed_rate − table_p| within this bound plus
        the validation run's own binomial noise.
        """
        if fec is None:
            fec = self.config.fec_schemes[0]
        k = min(max(0, int(interferers)), self.config.max_interferers)
        grid = self._grid
        nearest = min(grid, key=lambda s: abs(s - snr_db))
        delivered, trials = self.cells[(nearest, k, fec)]
        p = delivered / max(1, trials)
        return z * math.sqrt(max(p * (1.0 - p), 1.0 / trials) / trials)

    # -- calibration --------------------------------------------------------

    @classmethod
    def calibrate(cls, config, jobs=None):
        """Distill the table from the sample-level PHY (PR-1 runtime).

        One task per grid point; per-point seeds derive from the config
        seed by stable point index, so the table is identical however
        the points are scheduled across workers.
        """
        from repro.obs.trace import TRACER
        from repro.runtime import as_seed_sequence, run_trials

        points = config.points()
        root = as_seed_sequence(config.seed)
        tasks = []
        for index, (snr, k, fec) in enumerate(points):
            seed = np.random.SeedSequence(
                entropy=root.entropy, spawn_key=root.spawn_key + (index,)
            )
            tasks.append((snr, k, fec, config, seed))
        with TRACER.span("sim.calibrate", points=len(points)):
            outcomes = run_trials(_calibration_trial, tasks, jobs=jobs)
        _M_CAL_FRAMES.inc(len(points) * config.frames_per_point)
        cells = {
            point: (int(delivered), config.frames_per_point)
            for point, delivered in zip(points, outcomes)
        }
        return cls(config, cells)

    # -- disk cache ---------------------------------------------------------

    def save(self, path):
        """Atomic rewrite (tmp + rename), creating parent dirs."""
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA,
            "config": self.config.to_dict(),
            "cells": [
                {
                    "snr_db": snr,
                    "interferers": k,
                    "fec": fec,
                    "delivered": delivered,
                    "trials": trials,
                }
                for (snr, k, fec), (delivered, trials) in sorted(
                    self.cells.items(), key=lambda item: str(item[0])
                )
            ],
        }
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(document, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path, config):
        """Read a cache file; raises ``ValueError`` unless it matches.

        A mismatched config hash, wrong schema, truncated JSON or a
        missing grid point all reject the file — the caller falls back
        to recalibration.
        """
        with open(path, encoding="utf-8") as fh:
            try:
                document = json.load(fh)
            except ValueError as error:
                raise ValueError(f"not valid JSON ({error})") from None
        if not isinstance(document, dict):
            raise ValueError("not a delivery-table document")
        if document.get("schema") != CACHE_SCHEMA:
            raise ValueError(
                f"cache schema {document.get('schema')!r} != {CACHE_SCHEMA}"
            )
        if document.get("config") != config.to_dict():
            raise ValueError("calibration config mismatch")
        cells = {}
        for cell in document.get("cells", ()):
            try:
                key = (
                    float(cell["snr_db"]),
                    int(cell["interferers"]),
                    str(cell["fec"]),
                )
                cells[key] = (int(cell["delivered"]), int(cell["trials"]))
            except (KeyError, TypeError, ValueError):
                raise ValueError("malformed table cell") from None
        return cls(config, cells)  # raises on missing grid points

    @classmethod
    def load_or_calibrate(cls, config, cache_dir=None, jobs=None):
        """The front door: cached table when valid, else recalibrate.

        Unreadable/corrupt/stale cache files are reported with one
        path-prefixed line (PR-3 ``obs summary`` style) and replaced by
        a fresh calibration written back atomically.
        """
        path = config.cache_path(cache_dir)
        if os.path.exists(path):
            try:
                table = cls.load(path, config)
            except (OSError, ValueError) as error:
                reason = (
                    (error.strerror or str(error))
                    if isinstance(error, OSError)
                    else str(error)
                )
                logger.warning("%s: %s — recalibrating", path, reason)
            else:
                _M_CACHE_HITS.inc()
                return table
        _M_CACHE_MISSES.inc()
        table = cls.calibrate(config, jobs=jobs)
        try:
            table.save(path)
        except OSError as error:
            reason = error.strerror or str(error)
            logger.warning("%s: %s — table not cached", path, reason)
        return table
