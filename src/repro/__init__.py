"""SymBee: symbol-level ZigBee-to-WiFi cross-technology communication.

Reproduction of Wang, Kim & He, "Symbol-level Cross-technology
Communication via Payload Encoding", ICDCS 2018.

Public API tour:

* :mod:`repro.core` — the SymBee encoder/decoder, preamble capture,
  Hamming coding, framing, the end-to-end :class:`~repro.core.SymBeeLink`,
  and the analytical models.
* :mod:`repro.zigbee` — full 802.15.4 O-QPSK PHY + minimal MAC.
* :mod:`repro.wifi` — WiFi front end, idle listening, 802.11g OFDM.
* :mod:`repro.channel` — path loss, fading, interference, scenarios.
* :mod:`repro.baselines` — packet-level CTC comparison schemes.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import SymBeeDecoder, SymBeeEncoder, SymBeeLink

__version__ = "1.0.0"

__all__ = ["SymBeeEncoder", "SymBeeDecoder", "SymBeeLink", "__version__"]
